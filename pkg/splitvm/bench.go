package splitvm

import (
	"repro/internal/bench"
)

// The experiment harness behind cmd/dacbench and the top-level benchmarks,
// re-exported so tools built on the public API can regenerate the paper's
// evaluation artifacts without reaching into internal packages. Each Run
// function reproduces one table or figure; the report types render
// themselves in the paper's layout via String and marshal cleanly to JSON
// for machine-readable result tracking.

// Table1Options parameterizes the split-vectorization experiment.
type Table1Options = bench.Table1Options

// Table1Report reproduces Table 1 (split automatic vectorization).
type Table1Report = bench.Table1Report

// Figure1Report quantifies the split compilation flow of Figure 1.
type Figure1Report = bench.Figure1Report

// RegAllocOptions parameterizes the split register allocation sweep.
type RegAllocOptions = bench.RegAllocOptions

// RegAllocReport reproduces the Section 4 split register allocation claim.
type RegAllocReport = bench.RegAllocReport

// CodeSizeReport is the Section 2.1 bytecode-compactness experiment.
type CodeSizeReport = bench.CodeSizeReport

// HeteroOptions parameterizes the Section 3 whole-system offload scenario.
type HeteroOptions = bench.HeteroOptions

// HeteroReport compares host-only against annotation-guided offload.
type HeteroReport = bench.HeteroReport

// RunTable1 reproduces Table 1: each kernel compiled to scalar and
// vectorized bytecode, deployed on the three simulated targets, and timed.
func RunTable1(opts Table1Options) (*Table1Report, error) { return bench.RunTable1(opts) }

// RunFigure1 measures the distribution of optimization effort between the
// offline and online compilation steps, with and without annotations.
func RunFigure1() (*Figure1Report, error) { return bench.RunFigure1() }

// RunRegAlloc sweeps embedded-class register file sizes and compares the
// spills of the online, split and offline-quality allocators.
func RunRegAlloc(opts RegAllocOptions) (*RegAllocReport, error) { return bench.RunRegAlloc(opts) }

// RunCodeSize measures deployable bytecode sizes against generated native
// code sizes.
func RunCodeSize() (*CodeSizeReport, error) { return bench.RunCodeSize() }

// RunHetero runs the same deployable module on a Cell-like system under
// both placement policies and compares end-to-end cycles.
func RunHetero(opts HeteroOptions) (*HeteroReport, error) { return bench.RunHetero(opts) }

// HostOptions parameterizes the host-throughput measurement.
type HostOptions = bench.HostOptions

// HostReport measures how fast the simulator itself runs on this host
// (wall-clock ns/run, allocs/run, simulated instructions per host-second).
type HostReport = bench.HostReport

// RunHost measures the simulator's host throughput over the Table 1 kernels
// and targets. Unlike the other experiments its numbers are host-dependent:
// they are recorded in the results artifact for trend tracking but ignored
// by CompareResults.
func RunHost(opts HostOptions) (*HostReport, error) { return bench.RunHost(opts) }

// RunScalarizationAblation returns cycles(forced-scalarized)/cycles(SIMD)
// for one kernel on the SIMD-capable x86 target.
func RunScalarizationAblation(kernel string, n int) (float64, error) {
	return bench.ScalarizationAblation(kernel, n)
}

// Results is the machine-readable artifact schema cmd/dacbench writes
// (BENCH_results.json): one optional report per experiment.
type Results = bench.Results

// DiffOptions tunes the performance-regression gate of CompareResults.
type DiffOptions = bench.DiffOptions

// DiffReport is the outcome of comparing two Results artifacts.
type DiffReport = bench.DiffReport

// AnnoReport tracks the annotation-container trajectory (encoded sizes per
// writer version, deploy-time fallback counts); recorded in the artifact but
// never gated.
type AnnoReport = bench.AnnoReport

// RunAnno measures annotation sizes per writer version over the corpus
// kernels and the fallback behavior of the synthetic future stream.
func RunAnno() (*AnnoReport, error) { return bench.RunAnno() }

// CompileOptions parameterizes the compile-throughput measurement. (The
// splitvm names carry a Throughput infix where internal/bench says
// CompileReport, because CompileReport here already names the per-deployment
// compilation report.)
type CompileOptions = bench.CompileOptions

// CompileThroughputCell is the compile-path measurement of one kernel ×
// target × regalloc-mode cell.
type CompileThroughputCell = bench.CompileCell

// CompileThroughputParallel is the parallel compile-pipeline measurement
// (workers=1 versus workers=N on a multi-method module).
type CompileThroughputParallel = bench.CompileParallel

// CompileThroughputReport measures how fast the online JIT itself runs on
// this host (ns/compile, allocs/compile, methods/sec, parallel speedup).
type CompileThroughputReport = bench.CompileReport

// RunCompile measures online compile throughput over the Table 1 kernels on
// the Table 1 targets plus the wide-vector machine, under every register
// allocation mode, plus the parallel pipeline on a multi-method module.
// Host-dependent like RunHost: recorded in the results artifact for trend
// tracking but ignored by CompareResults.
func RunCompile(opts CompileOptions) (*CompileThroughputReport, error) { return bench.RunCompile(opts) }

// TierBenchOptions parameterizes the tiered-execution measurement.
type TierBenchOptions = bench.TierBenchOptions

// TierCell is the tiered-execution measurement of one kernel on one target.
type TierCell = bench.TierCell

// TierReport measures the tiered-execution machinery over the Table 1
// matrix: promotion latency cold versus profile-warmed, tier-1 versus
// tier-2 host speed, fused superinstruction pairs, profile-guided regalloc
// validation outcomes and serialized profile sizes.
type TierReport = bench.TierReport

// RunTier measures the tiering machinery over the Table 1 kernels and
// targets. Wall-clock numbers are host-dependent like RunHost: recorded in
// the results artifact for trend tracking but ignored by CompareResults.
// RunTier itself fails if any tier-2 run's simulated cycles diverge from
// the tier-1 baseline — the architectural-invariance contract.
func RunTier(opts TierBenchOptions) (*TierReport, error) { return bench.RunTier(opts) }

// ServeOptions parameterizes the serving-latency measurement.
type ServeOptions = bench.ServeOptions

// ServeHarness wires the HTTP servers under measurement into RunServe (the
// bench layer sits below pkg/splitvm/server in the import graph, so the
// caller supplies the constructors — see cmd/dacbench).
type ServeHarness = bench.ServeHarness

// ServeLatency is one request-latency distribution (nearest-rank
// percentiles in nanoseconds).
type ServeLatency = bench.ServeLatency

// ServeReport measures the deploy daemon itself: svd deploy/run request
// percentiles, the warm-restart speedup of the persistent disk cache, and
// the router's per-request overhead.
type ServeReport = bench.ServeReport

// RunServe measures serving latency over the injected servers. Wall-clock
// and host-dependent like RunHost: recorded in the results artifact for
// trend tracking but ignored by CompareResults.
func RunServe(opts ServeOptions) (*ServeReport, error) { return bench.RunServe(opts) }

// ParseResults decodes a BENCH_results.json artifact.
func ParseResults(data []byte) (*Results, error) { return bench.ParseResults(data) }

// StripUngatedResults removes every non-gated section from a raw results
// artifact, returning the canonical committed-baseline form. The gate only
// compares deterministic simulated metrics; host throughput, the annotation
// trajectory and any future tracked-only section are stripped generically.
func StripUngatedResults(data []byte) ([]byte, error) { return bench.StripUngated(data) }

// CompareResults evaluates a current artifact against a baseline: every
// lower-is-better metric (cycles, JIT steps, spill weights, code sizes) may
// grow at most RelTol (fractional) plus AbsTol (absolute) before the report
// Failed()s — the contract behind the CI perf gate (cmd/benchdiff).
func CompareResults(baseline, current *Results, opts DiffOptions) *DiffReport {
	return bench.Compare(baseline, current, opts)
}
