package splitvm

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/hetero"
	"repro/internal/jit"
	"repro/internal/target"
)

// System describes a heterogeneous multicore: a host core plus
// accelerators, each with its own target description and dispatch cost.
type System = hetero.System

// SystemCore is one processing element of a heterogeneous system.
type SystemCore = hetero.Core

// Policy selects how calls are mapped onto the cores of a system.
type Policy = hetero.Policy

// Placement policies.
const (
	// HostOnly runs everything on the host core (accelerators closed to
	// third-party code — the state of the art the paper criticizes).
	HostOnly Policy = hetero.HostOnly
	// Annotated uses the offline hardware-requirement annotations to place
	// heavy vector/float methods on an accelerator.
	Annotated Policy = hetero.Annotated
)

// HeteroRuntime is the deployment of one module on a heterogeneous system:
// one native image per kind of core, one placement policy.
type HeteroRuntime = hetero.Runtime

// CallResult describes where a heterogeneous call ran and what it cost.
type CallResult = hetero.CallResult

// Arg is one argument of a heterogeneous call.
type Arg = hetero.Arg

// ScalarArg wraps a scalar value for a heterogeneous call.
func ScalarArg(k Kind, v Value) Arg { return hetero.ScalarArg(k, v) }

// ArrayArg wraps an array argument for a heterogeneous call (marshalled
// into the chosen core's memory).
func ArrayArg(a *Array) Arg { return hetero.ArrayArg(a) }

// CellLike returns a Cell-BE-like system: a PowerPC-like host core plus two
// SPU-like vector accelerators.
func CellLike() *System { return hetero.CellLike() }

// EmbeddedSoC returns a set-top-box-like system: an MCU host and one
// SPU-like DSP.
func EmbeddedSoC() *System { return hetero.EmbeddedSoC() }

// DeployHetero deploys a module on every distinct core type of a
// heterogeneous system under the given placement policy. The per-core JIT
// compilations honor the engine's Deploy defaults plus any options given
// here (the target always comes from the system's core descriptions), and
// go through the engine's code cache, so a system with several accelerators
// of the same kind compiles once — and repeated DeployHetero calls for the
// same module reuse all native code.
func (e *Engine) DeployHetero(sys *System, m *Module, policy Policy, opts ...DeployOption) (*HeteroRuntime, error) {
	if m == nil {
		return nil, fmt.Errorf("splitvm: DeployHetero needs a module (did Compile fail?)")
	}
	if len(m.mod.Imports) > 0 {
		return nil, fmt.Errorf("splitvm: module %q imports other modules; use Engine.Link and DeployLinked so its cross-module calls resolve at link time", m.mod.Name)
	}
	cfg := e.deployConfig(opts)
	jopts := cfg.jitOptions()
	deploy := func(encoded []byte, tgt *target.Desc, _ jit.Options) (*core.Deployment, error) {
		if cfg.noCache {
			priv := *tgt // never alias the system's descriptor in a long-lived image
			img, err := e.buildImage(m, &priv, jopts, cfg.lazyCompile, cacheKey{})
			if err != nil {
				return nil, err
			}
			d := img.Instantiate()
			cfg.applyGovernor(d)
			return d, nil
		}
		img, _, _, err := e.image(context.Background(), m, tgt, jopts, cfg.lazyCompile)
		if err != nil {
			return nil, err
		}
		d := img.Instantiate()
		cfg.applyGovernor(d)
		return d, nil
	}
	return hetero.NewRuntimeWith(sys, m.encoded, policy, deploy)
}
