package splitvm

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/target"
)

const diskTestSource = `
i64 sumsq(i32 n) {
    i64 s = 0;
    for (i32 i = 1; i <= n; i++) { s = s + (i64) (i * i); }
    return s;
}
`

// cacheFiles lists the completed entry files in a cache dir.
func cacheFiles(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".svdc") {
			out = append(out, filepath.Join(dir, e.Name()))
		}
	}
	return out
}

// TestDiskCacheWarmRestart is the acceptance walk: compile+deploy on one
// engine, then deploy the same module on a fresh engine over the same cache
// dir — the second engine must serve from disk (FromCache true, zero
// compilations) and the deployed machine must behave bit-identically.
func TestDiskCacheWarmRestart(t *testing.T) {
	dir := t.TempDir()

	cold := New(WithDiskCache(dir))
	if err := cold.DiskCacheErr(); err != nil {
		t.Fatal(err)
	}
	mod, err := cold.Compile(diskTestSource)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := cold.Deploy(mod)
	if err != nil {
		t.Fatal(err)
	}
	if dep.FromCache() {
		t.Fatal("cold deploy claims a cache hit")
	}
	want, err := dep.Run("sumsq", IntArg(1000))
	if err != nil {
		t.Fatal(err)
	}
	wantCycles := dep.Cycles()
	if n := len(cacheFiles(t, dir)); n != 1 {
		t.Fatalf("cache dir holds %d entries after cold deploy, want 1", n)
	}

	// The restart: a new engine, a module re-loaded from its byte stream
	// (as svd would after an upload), the same cache volume.
	warm := New(WithDiskCache(dir))
	mod2, err := warm.Load(mod.Encoded())
	if err != nil {
		t.Fatal(err)
	}
	dep2, err := warm.Deploy(mod2)
	if err != nil {
		t.Fatal(err)
	}
	if !dep2.FromCache() {
		t.Error("warm deploy FromCache = false, want true")
	}
	if cs := warm.CompileStats(); cs.Compilations != 0 {
		t.Errorf("warm engine counted %d compilations, want 0", cs.Compilations)
	}
	st := warm.CacheStats()
	if st.DiskHits != 1 || st.Hits != 1 || st.Misses != 0 {
		t.Errorf("warm cache stats = %+v, want 1 disk hit / 1 hit / 0 misses", st)
	}

	// Bit-identity: same result, same simulated cycles, same native code.
	got, err := dep2.Run("sumsq", IntArg(1000))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("warm result = %v, want %v", got, want)
	}
	if dep2.Cycles() != wantCycles {
		t.Errorf("warm cycles = %d, want %d", dep2.Cycles(), wantCycles)
	}
	if dep.DisassembleNative() != dep2.DisassembleNative() {
		t.Error("disk round trip changed the native code")
	}
	if dep.JITSteps() != dep2.JITSteps() || dep.CompileNanos() != dep2.CompileNanos() {
		t.Error("disk round trip changed the compile accounting")
	}
	if !reflect.DeepEqual(dep.CompileReport().AnnotationOutcomes, dep2.CompileReport().AnnotationOutcomes) {
		t.Error("disk round trip changed the annotation outcomes")
	}
}

// TestDiskCacheKeyedByOptions checks that deployments differing in target
// or JIT options never share disk entries, mirroring the in-memory key.
func TestDiskCacheKeyedByOptions(t *testing.T) {
	dir := t.TempDir()
	eng := New(WithDiskCache(dir))
	mod, err := eng.Compile(diskTestSource)
	if err != nil {
		t.Fatal(err)
	}
	deploys := [][]DeployOption{
		{WithTarget(target.X86SSE)},
		{WithTarget(target.MCU)},
		{WithTarget(target.X86SSE), WithRegAllocMode(RegAllocOnline)},
		{WithTarget(target.X86SSE), WithForceScalarize(true)},
	}
	for _, opts := range deploys {
		if _, err := eng.Deploy(mod, opts...); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(cacheFiles(t, dir)); n != len(deploys) {
		t.Fatalf("cache dir holds %d entries, want %d (one per distinct key)", n, len(deploys))
	}

	// Every variant resolves warm on a fresh engine.
	warm := New(WithDiskCache(dir))
	for _, opts := range deploys {
		dep, err := warm.Deploy(mod, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if !dep.FromCache() {
			t.Errorf("deploy %v not served from disk", opts)
		}
	}
	if cs := warm.CompileStats(); cs.Compilations != 0 {
		t.Errorf("warm engine compiled %d times, want 0", cs.Compilations)
	}
}

// TestDiskCacheCorruptionFallsBackToCompile covers the degrade-don't-fail
// contract: truncated and bit-flipped entries must recompile silently.
func TestDiskCacheCorruptionFallsBackToCompile(t *testing.T) {
	corruptions := []struct {
		name string
		mut  func(t *testing.T, path string)
	}{
		{"truncated", func(t *testing.T, path string) {
			fi, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(path, fi.Size()/2); err != nil {
				t.Fatal(err)
			}
		}},
		{"bit-flipped", func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)/2] ^= 0x01
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"emptied", func(t *testing.T, path string) {
			if err := os.WriteFile(path, nil, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			cold := New(WithDiskCache(dir))
			mod, err := cold.Compile(diskTestSource)
			if err != nil {
				t.Fatal(err)
			}
			dep, err := cold.Deploy(mod)
			if err != nil {
				t.Fatal(err)
			}
			want, err := dep.Run("sumsq", IntArg(100))
			if err != nil {
				t.Fatal(err)
			}

			files := cacheFiles(t, dir)
			if len(files) != 1 {
				t.Fatalf("%d cache files, want 1", len(files))
			}
			tc.mut(t, files[0])

			warm := New(WithDiskCache(dir))
			dep2, err := warm.Deploy(mod)
			if err != nil {
				t.Fatalf("deploy over a %s entry errored: %v (must recompile instead)", tc.name, err)
			}
			if dep2.FromCache() {
				t.Errorf("%s entry was served as a cache hit", tc.name)
			}
			if cs := warm.CompileStats(); cs.Compilations != 1 {
				t.Errorf("compilations = %d, want 1 (fallback recompile)", cs.Compilations)
			}
			got, err := dep2.Run("sumsq", IntArg(100))
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("recompiled result = %v, want %v", got, want)
			}
			// The recompile re-persists a valid entry, so the next restart
			// is warm again.
			next := New(WithDiskCache(dir))
			dep3, err := next.Deploy(mod)
			if err != nil {
				t.Fatal(err)
			}
			if !dep3.FromCache() {
				t.Error("entry was not re-persisted after the fallback recompile")
			}
		})
	}
}

// TestDiskCacheConcurrentWarmDeploys exercises the disk-hit path under the
// race detector: many goroutines resolving the same and different keys
// against a warm volume.
func TestDiskCacheConcurrentWarmDeploys(t *testing.T) {
	dir := t.TempDir()
	cold := New(WithDiskCache(dir))
	mod, err := cold.Compile(diskTestSource)
	if err != nil {
		t.Fatal(err)
	}
	archs := []target.Arch{target.X86SSE, target.Sparc, target.MCU}
	for _, a := range archs {
		if _, err := cold.Deploy(mod, WithTarget(a)); err != nil {
			t.Fatal(err)
		}
	}

	warm := New(WithDiskCache(dir))
	var wg sync.WaitGroup
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			dep, err := warm.Deploy(mod, WithTarget(archs[g%len(archs)]))
			if err != nil {
				t.Errorf("goroutine %d: %v", g, err)
				return
			}
			if res, err := dep.Run("sumsq", IntArg(50)); err != nil || res.I != 42925 {
				t.Errorf("goroutine %d: run = %v, %v", g, res, err)
			}
		}(g)
	}
	wg.Wait()
	if cs := warm.CompileStats(); cs.Compilations != 0 {
		t.Errorf("warm engine compiled %d times, want 0", cs.Compilations)
	}
	st := warm.CacheStats()
	if st.DiskHits != int64(len(archs)) {
		t.Errorf("disk hits = %d, want %d (one per key; the rest join in memory)", st.DiskHits, len(archs))
	}
}

// TestDiskCacheEvictionDemotesToDisk pins the demotion contract: with a
// size-1 LRU, the evicted image must stay reachable through the disk.
func TestDiskCacheEvictionDemotesToDisk(t *testing.T) {
	dir := t.TempDir()
	eng := New(WithDiskCache(dir), WithCacheSize(1))
	mod, err := eng.Compile(diskTestSource)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Deploy(mod, WithTarget(target.X86SSE)); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Deploy(mod, WithTarget(target.MCU)); err != nil {
		t.Fatal(err)
	}
	st := eng.CacheStats()
	if st.Evictions != 1 || st.Entries != 1 {
		t.Fatalf("cache stats = %+v, want 1 eviction leaving 1 entry", st)
	}
	if n := len(cacheFiles(t, dir)); n != 2 {
		t.Fatalf("cache dir holds %d entries, want 2 (evicted image demoted, not dropped)", n)
	}
	// Re-deploying the evicted key is a disk hit, not a recompilation.
	dep, err := eng.Deploy(mod, WithTarget(target.X86SSE))
	if err != nil {
		t.Fatal(err)
	}
	if !dep.FromCache() {
		t.Error("evicted key did not resolve from disk")
	}
	if cs := eng.CompileStats(); cs.Compilations != 2 {
		t.Errorf("compilations = %d, want 2 (x86 once, mcu once)", cs.Compilations)
	}
}

// TestDiskCacheErrSurfaced: an unusable cache dir degrades to memory-only
// caching with the reason reported, never a broken engine.
func TestDiskCacheErrSurfaced(t *testing.T) {
	file := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	eng := New(WithDiskCache(file))
	if eng.DiskCacheErr() == nil {
		t.Error("DiskCacheErr = nil for a file path")
	}
	mod, err := eng.Compile(diskTestSource)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Deploy(mod); err != nil {
		t.Errorf("memory-only fallback deploy failed: %v", err)
	}
}
