package splitvm

import (
	"repro/internal/cil"
	"repro/internal/jit"
	"repro/internal/kernels"
	"repro/internal/sim"
	"repro/internal/vm"
)

// Value is a machine-level value: integers and addresses in I,
// floating-point values in F.
type Value = sim.Value

// IntArg builds an integer argument.
func IntArg(v int64) Value { return sim.IntArg(v) }

// FloatArg builds a floating-point argument.
func FloatArg(v float64) Value { return sim.FloatArg(v) }

// Stats aggregates a machine's execution statistics (cycles, instructions,
// memory and spill traffic, vector operations, branches, calls).
type Stats = sim.Stats

// Kind identifies a value kind of the portable bytecode.
type Kind = cil.Kind

// The scalar kinds of the portable bytecode, re-exported so API users do
// not need to reach into internal packages to build arrays and arguments.
const (
	Bool Kind = cil.Bool
	I8   Kind = cil.I8
	U8   Kind = cil.U8
	I16  Kind = cil.I16
	U16  Kind = cil.U16
	I32  Kind = cil.I32
	U32  Kind = cil.U32
	I64  Kind = cil.I64
	U64  Kind = cil.U64
	F32  Kind = cil.F32
	F64  Kind = cil.F64
)

// Array is a managed array usable both by the reference interpreter and —
// marshalled — by deployed machines.
type Array = vm.Array

// NewArray allocates a managed array of n elements of the given kind.
func NewArray(elem Kind, n int) *Array { return vm.NewArray(elem, n) }

// RegAllocMode selects the JIT's register allocation strategy.
type RegAllocMode = jit.RegAllocMode

// Register allocation modes.
const (
	// RegAllocOnline is the baseline purely-online linear-scan allocator.
	RegAllocOnline RegAllocMode = jit.RegAllocOnline
	// RegAllocSplit consumes the split register allocation annotation
	// produced offline; without one it degrades to RegAllocOnline.
	RegAllocSplit RegAllocMode = jit.RegAllocSplit
	// RegAllocOptimal recomputes full weights online (the offline-quality
	// reference; too slow for a real JIT).
	RegAllocOptimal RegAllocMode = jit.RegAllocOptimal
)

// Kernel describes one benchmark kernel of the evaluation suite.
type Kernel = kernels.Kernel

// Inputs is a deterministic, reproducible input set for one kernel.
type Inputs = kernels.Inputs

// Kernels returns every benchmark kernel, the paper's Table 1 rows first.
func Kernels() []Kernel { return kernels.All() }

// Table1KernelNames lists the kernels of the paper's Table 1 in row order.
func Table1KernelNames() []string {
	return append([]string(nil), kernels.Table1Names...)
}

// NewInputs builds the pseudo-random input set for a named kernel with n
// elements per array.
func NewInputs(name string, n int, seed int64) (*Inputs, error) {
	return kernels.NewInputs(name, n, seed)
}
