package splitvm

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/target"
)

// TestConcurrentDeploymentsShareCache is the concurrency contract of the
// code cache: one module deployed from many goroutines across several
// targets must JIT-compile exactly once per (target, options) key, every
// later deployment must be a cache hit, and every machine must compute the
// same results. Run under -race this also checks the cache's locking and
// that cached images are never mutated by concurrent machines.
func TestConcurrentDeploymentsShareCache(t *testing.T) {
	eng := New()
	m, err := eng.Compile(sumsqSource, WithModuleName("conc"))
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.Interpret("sumsq", IntArg(500))
	if err != nil {
		t.Fatal(err)
	}

	archs := []target.Arch{target.X86SSE, target.Sparc, target.PPC, target.SPU, target.MCU}
	const perTarget = 16

	var wg sync.WaitGroup
	results := make(chan int64, len(archs)*perTarget)
	errs := make(chan error, len(archs)*perTarget)
	for _, arch := range archs {
		for g := 0; g < perTarget; g++ {
			wg.Add(1)
			go func(a target.Arch) {
				defer wg.Done()
				dep, err := eng.Deploy(m, WithTarget(a))
				if err != nil {
					errs <- err
					return
				}
				v, err := dep.Run("sumsq", IntArg(500))
				if err != nil {
					errs <- err
					return
				}
				results <- v.I
			}(arch)
		}
	}
	wg.Wait()
	close(errs)
	close(results)
	for err := range errs {
		t.Fatal(err)
	}
	n := 0
	for v := range results {
		n++
		if v != want.Value.I {
			t.Fatalf("concurrent deployment computed %d, interpreter %d", v, want.Value.I)
		}
	}
	if n != len(archs)*perTarget {
		t.Fatalf("%d results, want %d", n, len(archs)*perTarget)
	}

	st := eng.CacheStats()
	if st.Misses != int64(len(archs)) {
		t.Errorf("misses = %d, want exactly one JIT compilation per target (%d)", st.Misses, len(archs))
	}
	if st.Hits != int64(len(archs)*(perTarget-1)) {
		t.Errorf("hits = %d, want %d (every later deployment served from cache)", st.Hits, len(archs)*(perTarget-1))
	}
	if st.Entries != len(archs) {
		t.Errorf("entries = %d, want %d", st.Entries, len(archs))
	}
	if st.Evictions != 0 || st.MaxEntries != 0 {
		t.Errorf("unbounded engine reported evictions=%d maxEntries=%d, want 0/0", st.Evictions, st.MaxEntries)
	}
}

// TestConcurrentMixedModules deploys two different modules concurrently and
// checks the cache keys them apart by content hash.
func TestConcurrentMixedModules(t *testing.T) {
	eng := New()
	m1, err := eng.Compile(sumsqSource, WithModuleName("a"))
	if err != nil {
		t.Fatal(err)
	}
	m2, err := eng.Compile(`i32 twice(i32 n) { return 2 * n; }`, WithModuleName("b"))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			dep1, err := eng.Deploy(m1)
			if err != nil {
				errs <- err
				return
			}
			dep2, err := eng.Deploy(m2)
			if err != nil {
				errs <- err
				return
			}
			if v, err := dep1.Run("sumsq", IntArg(10)); err != nil || v.I != 385 {
				errs <- err
				return
			}
			if v, err := dep2.Run("twice", IntArg(21)); err != nil || v.I != 42 {
				errs <- err
				return
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	st := eng.CacheStats()
	if st.Entries != 2 || st.Misses != 2 {
		t.Errorf("cache stats = %+v, want 2 entries from 2 misses", st)
	}
}

// TestCacheSizeBoundEvictsLRU checks the WithCacheSize bound: the cache
// never holds more than the configured number of images, evicts in
// least-recently-deployed order, and counts evictions.
func TestCacheSizeBoundEvictsLRU(t *testing.T) {
	eng := New(WithCacheSize(2))
	m, err := eng.Compile(sumsqSource, WithModuleName("lru"))
	if err != nil {
		t.Fatal(err)
	}
	deploy := func(a target.Arch) {
		t.Helper()
		dep, err := eng.Deploy(m, WithTarget(a))
		if err != nil {
			t.Fatal(err)
		}
		if v, err := dep.Run("sumsq", IntArg(10)); err != nil || v.I != 385 {
			t.Fatalf("sumsq on %s = (%v, %v), want 385", a, v.I, err)
		}
	}

	deploy(target.X86SSE) // miss; cache {x86}
	deploy(target.Sparc)  // miss; cache {sparc, x86}
	deploy(target.X86SSE) // hit; x86 becomes most recent
	deploy(target.PPC)    // miss; evicts sparc (LRU), not x86
	deploy(target.Sparc)  // miss again: it was evicted; evicts x86
	deploy(target.PPC)    // hit: still resident

	st := eng.CacheStats()
	if st.Misses != 4 {
		t.Errorf("misses = %d, want 4 (x86, sparc, ppc, sparc-again)", st.Misses)
	}
	if st.Hits != 2 {
		t.Errorf("hits = %d, want 2 (x86 touch, final ppc)", st.Hits)
	}
	if st.Evictions != 2 {
		t.Errorf("evictions = %d, want 2", st.Evictions)
	}
	if st.Entries != 2 || st.MaxEntries != 2 {
		t.Errorf("entries = %d (max %d), want bound of 2 enforced", st.Entries, st.MaxEntries)
	}
}

// TestCacheSizeBoundConcurrent hammers a size-1 cache from many goroutines
// across several targets; run under -race this checks the eviction path's
// locking. Every deployment must still compute correct results, and the
// bound must hold at the end.
func TestCacheSizeBoundConcurrent(t *testing.T) {
	eng := New(WithCacheSize(1))
	m, err := eng.Compile(sumsqSource, WithModuleName("lru-conc"))
	if err != nil {
		t.Fatal(err)
	}
	archs := []target.Arch{target.X86SSE, target.Sparc, target.MCU}
	var wg sync.WaitGroup
	errs := make(chan error, len(archs)*8)
	for _, arch := range archs {
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(a target.Arch) {
				defer wg.Done()
				dep, err := eng.Deploy(m, WithTarget(a))
				if err != nil {
					errs <- err
					return
				}
				if v, err := dep.Run("sumsq", IntArg(10)); err != nil {
					errs <- err
				} else if v.I != 385 {
					errs <- fmt.Errorf("sumsq on %s = %d, want 385", a, v.I)
				}
			}(arch)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := eng.CacheStats()
	if st.Entries > 1 {
		t.Errorf("entries = %d, want at most the bound of 1", st.Entries)
	}
	if st.Hits+st.Misses != int64(len(archs)*8) {
		t.Errorf("hits+misses = %d, want %d deployments accounted", st.Hits+st.Misses, len(archs)*8)
	}
	if st.Evictions < int64(len(archs)-1) {
		t.Errorf("evictions = %d, want at least %d on a size-1 cache over %d targets", st.Evictions, len(archs)-1, len(archs))
	}
}
