package splitvm

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"sync"

	"repro/internal/anno"
	"repro/internal/cil"
	"repro/internal/core"
	"repro/internal/vm"
)

// Module is a compiled (or loaded), verified, deployable module: the byte
// stream that crosses the distribution boundary plus its decoded form. A
// Module is immutable after construction and safe to deploy from many
// goroutines.
type Module struct {
	mod     *cil.Module
	encoded []byte
	hash    [sha256.Size]byte

	// annoInfo records, at load time, the declared version and support
	// status of every annotation in the module.
	annoInfo []AnnotationSectionInfo

	// stats carries offline-compilation accounting; zero for modules that
	// were Load-ed rather than compiled.
	stats ModuleStats

	// interp is the lazily-created reference interpreter (over a private
	// clone, so the shared module stays untouched). The interpreter is not
	// reentrant; the mutex serializes Interpret calls.
	interpMu sync.Mutex
	interp   *vm.Runtime
}

// ModuleStats is the offline-side accounting of a compiled module.
type ModuleStats struct {
	// EncodedBytes is the size of the deployable byte stream.
	EncodedBytes int
	// AnnotationBytes is the total size of the split-compilation
	// annotations carried inside it.
	AnnotationBytes int
	// FoldedConstants counts offline constant-folding rewrites.
	FoldedConstants int
	// VectorizedLoops counts loops the offline vectorizer strip-mined.
	VectorizedLoops int
	// OfflineSteps approximates the analysis work spent offline (the
	// Figure 1 quantity).
	OfflineSteps int64
}

func newCompiledModule(res *core.OfflineResult) (*Module, error) {
	// Verify once at construction: deployments JIT from the shared decoded
	// module concurrently, and verification is the only stage that writes
	// into it (per-method MaxStack).
	if err := cil.Verify(res.Module); err != nil {
		return nil, err
	}
	m := &Module{
		mod:      res.Module,
		encoded:  res.Encoded,
		hash:     sha256.Sum256(res.Encoded),
		annoInfo: anno.InspectModule(res.Module),
		stats: ModuleStats{
			EncodedBytes:    len(res.Encoded),
			AnnotationBytes: res.AnnotationBytes,
			FoldedConstants: res.FoldedConstants,
			OfflineSteps:    res.OfflineSteps,
		},
	}
	for _, vr := range res.VectorizeResults {
		m.stats.VectorizedLoops += len(vr.Plans)
	}
	return m, nil
}

func loadModule(encoded []byte) (*Module, error) {
	buf := append([]byte(nil), encoded...)
	mod, err := cil.Decode(buf)
	if err != nil {
		return nil, err
	}
	if err := cil.Verify(mod); err != nil {
		return nil, err
	}
	return &Module{
		mod:      mod,
		encoded:  buf,
		hash:     sha256.Sum256(buf),
		annoInfo: anno.InspectModule(mod),
		stats: ModuleStats{
			EncodedBytes:    len(buf),
			AnnotationBytes: anno.TotalAnnotationBytes(mod),
		},
	}, nil
}

// Name returns the module name.
func (m *Module) Name() string { return m.mod.Name }

// Hash returns the hex-encoded SHA-256 of the encoded byte stream — the
// content identity the engine's code cache keys on, usable as a stable
// module identifier by services built on the engine.
func (m *Module) Hash() string { return hex.EncodeToString(m.hash[:]) }

// Encoded returns a copy of the deployable byte stream.
func (m *Module) Encoded() []byte { return append([]byte(nil), m.encoded...) }

// Stats returns the offline-compilation accounting.
func (m *Module) Stats() ModuleStats { return m.stats }

// AnnotationSectionInfo describes one annotation value of a loaded module:
// its declared schema version (0 for grandfathered legacy streams), whether
// this build can consume it, and — for enveloped values — the section table.
type AnnotationSectionInfo = anno.SectionInfo

// AnnotationInfo reports the per-method annotation versions recorded when
// the module was loaded (or compiled): what each annotation declares and
// whether this reader supports it. Unsupported annotations are not errors —
// deployments degrade to online-only compilation for those sections (see
// Deployment.CompileReport).
func (m *Module) AnnotationInfo() []AnnotationSectionInfo {
	return append([]AnnotationSectionInfo(nil), m.annoInfo...)
}

// Methods lists the module's method names in definition order.
func (m *Module) Methods() []string {
	out := make([]string, 0, len(m.mod.Methods))
	for _, meth := range m.mod.Methods {
		out = append(out, meth.Name)
	}
	return out
}

// Disassemble renders the bytecode: signatures, locals, annotations and the
// instruction stream.
func (m *Module) Disassemble() string { return cil.Disassemble(m.mod) }

// Signature describes one method's interface at the level the public API
// needs for argument marshalling: parameter shapes, not raw bytecode types.
type Signature struct {
	Name string
	// Params describes each parameter in order.
	Params []Param
	// ReturnsFloat reports whether the result is floating point.
	ReturnsFloat bool
}

// Param is one parameter shape.
type Param struct {
	// Float marks floating-point scalars.
	Float bool
	// Array marks array references (marshalled as addresses).
	Array bool
}

func signatureOf(meth *cil.Method) Signature {
	sig := Signature{Name: meth.Name, ReturnsFloat: meth.Ret.Kind.IsFloat()}
	for _, p := range meth.Params {
		sig.Params = append(sig.Params, Param{Float: p.Kind.IsFloat(), Array: p.IsArray()})
	}
	return sig
}

// Signature returns the signature of a named method.
func (m *Module) Signature(entry string) (Signature, error) {
	meth := m.mod.Method(entry)
	if meth == nil {
		return Signature{}, fmt.Errorf("splitvm: no method %q in module %s", entry, m.mod.Name)
	}
	return signatureOf(meth), nil
}

// ParseArgs converts command-line style textual arguments into machine
// values following the signature: float parameters parse as floating point,
// integer parameters as integers (a float literal for an integer parameter
// is an error, not a silent truncation). Array parameters cannot be
// expressed textually.
func (s Signature) ParseArgs(raw []string) ([]Value, error) {
	if len(raw) != len(s.Params) {
		return nil, fmt.Errorf("%s expects %d arguments, got %d", s.Name, len(s.Params), len(raw))
	}
	out := make([]Value, len(raw))
	for i, text := range raw {
		p := s.Params[i]
		if p.Array {
			return nil, fmt.Errorf("argument %d of %s is an array; array arguments are only supported programmatically", i+1, s.Name)
		}
		if p.Float {
			v, err := strconv.ParseFloat(text, 64)
			if err != nil {
				return nil, fmt.Errorf("argument %d of %s: %v", i+1, s.Name, err)
			}
			out[i] = FloatArg(v)
			continue
		}
		v, err := strconv.ParseInt(text, 0, 64)
		if err != nil {
			return nil, fmt.Errorf("argument %d of %s: %v", i+1, s.Name, err)
		}
		out[i] = IntArg(v)
	}
	return out, nil
}

// InterpResult is the outcome of running an entry point on the reference
// interpreter.
type InterpResult struct {
	// Value holds the result (I for integers, F for floats).
	Value Value
	// Float reports which half of Value is meaningful.
	Float bool
	// Steps counts executed bytecode instructions.
	Steps int64
}

// Interpret runs an entry point on the reference interpreter (the managed
// runtime) — the functional oracle the JIT outputs are tested against. Only
// scalar arguments are supported.
func (m *Module) Interpret(entry string, args ...Value) (*InterpResult, error) {
	meth := m.mod.Method(entry)
	if meth == nil {
		return nil, fmt.Errorf("splitvm: no method %q in module %s", entry, m.mod.Name)
	}
	if len(args) != len(meth.Params) {
		return nil, fmt.Errorf("%s expects %d arguments, got %d", entry, len(meth.Params), len(args))
	}
	vmArgs := make([]vm.Value, len(args))
	for i, a := range args {
		p := meth.Params[i]
		if p.IsArray() {
			return nil, fmt.Errorf("argument %d of %s is an array; Interpret supports scalars only", i+1, entry)
		}
		if p.Kind.IsFloat() {
			vmArgs[i] = vm.FloatValue(p.Kind, a.F)
		} else {
			vmArgs[i] = vm.IntValue(p.Kind, a.I)
		}
	}
	m.interpMu.Lock()
	defer m.interpMu.Unlock()
	if m.interp == nil {
		rt, err := vm.NewRuntime(m.mod.Clone())
		if err != nil {
			return nil, err
		}
		m.interp = rt
	}
	before := m.interp.Steps
	res, err := m.interp.Call(entry, vmArgs...)
	if err != nil {
		return nil, err
	}
	return &InterpResult{
		Value: Value{I: res.Int(), F: res.Float()},
		Float: meth.Ret.Kind.IsFloat(),
		Steps: m.interp.Steps - before,
	}, nil
}
