package splitvm

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/kernels"
	"repro/internal/target"
)

// TestGovernorMatrixBitIdentical is the governor's central contract, checked
// over every Table 1 kernel on every registered target: a run governed by a
// just-sufficient memory limit is bit-identical to an ungoverned one —
// result, output arrays and simulated cycles — and a limit one byte lower
// fails with a typed ResourceError of kind ResourceMem. MemUsed of the
// ungoverned run doubles as the oracle for "just sufficient", which also
// pins the accounting itself as deterministic.
func TestGovernorMatrixBitIdentical(t *testing.T) {
	eng := New()
	for _, name := range Table1KernelNames() {
		k := kernels.MustGet(name)
		m, err := eng.Compile(k.Source, WithModuleName(k.Name))
		if err != nil {
			t.Fatalf("%s: compile: %v", name, err)
		}
		for _, d := range target.All() {
			in, err := NewInputs(k.Name, 64, 7)
			if err != nil {
				t.Fatalf("%s: inputs: %v", name, err)
			}
			base, err := eng.Deploy(m, WithTarget(d.Arch))
			if err != nil {
				t.Fatalf("%s/%s: deploy: %v", name, d.Arch, err)
			}
			want, err := base.RunKernel(k, in)
			if err != nil {
				t.Fatalf("%s/%s: ungoverned run: %v", name, d.Arch, err)
			}
			used := base.MemUsed()
			if used <= 1 {
				t.Fatalf("%s/%s: MemUsed = %d, expected real charges", name, d.Arch, used)
			}

			gov, err := eng.Deploy(m, WithTarget(d.Arch), WithMemLimit(used))
			if err != nil {
				t.Fatalf("%s/%s: governed deploy: %v", name, d.Arch, err)
			}
			if gov.MemLimit() != used {
				t.Fatalf("%s/%s: MemLimit = %d, want %d", name, d.Arch, gov.MemLimit(), used)
			}
			if !gov.FromCache() {
				t.Errorf("%s/%s: governed deployment missed the cache — the limit leaked into the cache key", name, d.Arch)
			}
			got, err := gov.RunKernel(k, in)
			if err != nil {
				t.Fatalf("%s/%s: run under just-sufficient limit: %v", name, d.Arch, err)
			}
			if got.Result != want.Result {
				t.Errorf("%s/%s: governed result %+v != ungoverned %+v", name, d.Arch, got.Result, want.Result)
			}
			if got.Cycles != want.Cycles {
				t.Errorf("%s/%s: governed cycles %d != ungoverned %d", name, d.Arch, got.Cycles, want.Cycles)
			}
			if !reflect.DeepEqual(got.Outputs, want.Outputs) {
				t.Errorf("%s/%s: governed outputs differ from ungoverned", name, d.Arch)
			}
			if gov.MemUsed() != used {
				t.Errorf("%s/%s: governed run charged %d, ungoverned %d", name, d.Arch, gov.MemUsed(), used)
			}

			tight, err := eng.Deploy(m, WithTarget(d.Arch), WithMemLimit(used-1))
			if err != nil {
				t.Fatalf("%s/%s: tight deploy: %v", name, d.Arch, err)
			}
			_, err = tight.RunKernel(k, in)
			var re *ResourceError
			if !errors.As(err, &re) || re.Kind != ResourceMem {
				t.Fatalf("%s/%s: one-byte-lower limit = %v, want ResourceError{mem}", name, d.Arch, err)
			}
		}
	}
}

// TestGovernorLazyFirstCallCompilesFree pins the lazy-deployment half of
// the contract: first-call JIT compilation is host work and must not charge
// the guest's memory budget, so a lazy deployment governed at exactly the
// eager run's MemUsed still compiles and runs bit-identically.
func TestGovernorLazyFirstCallCompilesFree(t *testing.T) {
	eng := New()
	for _, name := range []string{"sum_u16", "saxpy_fp"} {
		k := kernels.MustGet(name)
		m, err := eng.Compile(k.Source, WithModuleName(k.Name))
		if err != nil {
			t.Fatal(err)
		}
		in, err := NewInputs(k.Name, 48, 3)
		if err != nil {
			t.Fatal(err)
		}
		base, err := eng.Deploy(m)
		if err != nil {
			t.Fatal(err)
		}
		want, err := base.RunKernel(k, in)
		if err != nil {
			t.Fatal(err)
		}
		used := base.MemUsed()

		lazy, err := eng.Deploy(m, WithLazyCompile(true), WithMemLimit(used))
		if err != nil {
			t.Fatal(err)
		}
		got, err := lazy.RunKernel(k, in)
		if err != nil {
			t.Fatalf("%s: lazy first call under just-sufficient limit: %v", name, err)
		}
		if got.Result != want.Result || got.Cycles != want.Cycles {
			t.Errorf("%s: lazy governed run (%+v, %d cycles) != eager ungoverned (%+v, %d cycles)",
				name, got.Result, got.Cycles, want.Result, want.Cycles)
		}
		if lazy.MemUsed() != used {
			t.Errorf("%s: lazy first call charged %d guest bytes, eager %d — compilation leaked into the budget",
				name, lazy.MemUsed(), used)
		}
	}
}

func TestGovernorRunDeadline(t *testing.T) {
	eng := New()
	m, err := eng.Compile(sumsqSource)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := eng.Deploy(m, WithRunDeadline(time.Nanosecond))
	if err != nil {
		t.Fatal(err)
	}
	if dep.RunDeadline() != time.Nanosecond {
		t.Fatalf("RunDeadline = %v", dep.RunDeadline())
	}
	_, err = dep.Run("sumsq", IntArg(50_000_000))
	var re *ResourceError
	if !errors.As(err, &re) || re.Kind != ResourceDeadline {
		t.Fatalf("run past its deadline = %v, want ResourceError{deadline}", err)
	}

	// The same deployment honors a caller cancellation as a cancellation.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = dep.RunContext(ctx, "sumsq", IntArg(50_000_000))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("caller-cancelled run = %v, want context.Canceled", err)
	}
}

// TestGovernorHostileAllocation drives a hostile `new` through the whole
// public pipeline: a guest that asks for terabytes under a governed
// deployment fails typed before the host allocator is touched.
func TestGovernorHostileAllocation(t *testing.T) {
	const src = `
i64 bomb(i32 n) {
    i64 total = 0;
    for (i32 i = 0; i < n; i++) {
        f64 a[] = new f64[200000000];
        total = total + (i64) a[0];
    }
    return total;
}
`
	eng := New()
	m, err := eng.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := eng.Deploy(m, WithMemLimit(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	_, err = dep.Run("bomb", IntArg(1_000_000))
	var re *ResourceError
	if !errors.As(err, &re) || re.Kind != ResourceMem {
		t.Fatalf("hostile allocation loop = %v, want ResourceError{mem}", err)
	}
	if dep.GuardStats() != (GuardStats{}) {
		t.Errorf("a governed breach must not quarantine: %+v", dep.GuardStats())
	}
}
