package server

import (
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/pkg/splitvm"
)

// runStatus posts one run request with an optional tenant header and
// returns the HTTP status and decoded error body (zero on success).
func runStatus(t *testing.T, url, tenant string, req RunRequest) (int, errorBody, http.Header) {
	t.Helper()
	resp := postJSONTenant(t, url, tenant, req)
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		return resp.StatusCode, errorBody{}, resp.Header
	}
	return resp.StatusCode, decodeJSON[errorBody](t, resp.Body), resp.Header
}

// deployGoverned uploads sumsq and deploys it once on mcu with the given
// governor fields, returning the deployment id.
func deployGoverned(t *testing.T, ts *httptest.Server, memLimit, deadlineMillis int64) string {
	t.Helper()
	id := upload(t, ts, encodeModule(t, sumsqSource))
	resp := postJSON(t, ts.URL+"/v1/deploy", DeployRequest{
		Module:            id,
		Targets:           []string{"mcu"},
		MemLimit:          memLimit,
		RunDeadlineMillis: deadlineMillis,
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("deploy: status %d", resp.StatusCode)
	}
	dr := decodeJSON[DeployResponse](t, resp.Body)
	if got := dr.Deployments[0].MemLimit; got != memLimit {
		t.Fatalf("deploy echoed mem_limit %d, want %d", got, memLimit)
	}
	if got := dr.Deployments[0].RunDeadlineMillis; got != deadlineMillis {
		t.Fatalf("deploy echoed run_deadline_ms %d, want %d", got, deadlineMillis)
	}
	return dr.Deployments[0].ID
}

func TestRunGovernorBreachIsResourceExhausted(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	depID := deployGoverned(t, ts, 1, 0) // one byte: the first frame trips it

	status, eb, _ := runStatus(t, ts.URL+"/v1/deployments/"+depID+"/run", "", RunRequest{Entry: "sumsq", Args: []string{"10"}})
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("governed breach: status %d, want 422", status)
	}
	if eb.Class != errClassResourceExhausted || eb.Retryable {
		t.Fatalf("governed breach = %+v, want non-retryable resource_exhausted", eb)
	}

	// The breach quarantines nothing and sheds nothing — the machine is
	// healthy, the module just hit its limit.
	st := getStats(t, ts)
	if st.Guard.Quarantines != 0 || st.RunsShed != 0 {
		t.Errorf("stats after breach = guard %+v, shed %d", st.Guard, st.RunsShed)
	}

	// A negative limit never deploys.
	resp := postJSON(t, ts.URL+"/v1/deploy", DeployRequest{Module: upload(t, ts, encodeModule(t, sumsqSource)), Targets: []string{"mcu"}, MemLimit: -1})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative mem_limit: status %d, want 400", resp.StatusCode)
	}
}

func TestStatsCountQuarantinesAndRebuilds(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	depID := deployGoverned(t, ts, 0, 0)

	if err := faultinject.Arm("sim.panic:error"); err != nil {
		t.Fatal(err)
	}
	status, eb, _ := runStatus(t, ts.URL+"/v1/deployments/"+depID+"/run", "", RunRequest{Entry: "sumsq", Args: []string{"10"}})
	faultinject.Disarm()
	if status != http.StatusUnprocessableEntity || eb.Class != errClassExecution || eb.Retryable {
		t.Fatalf("injected guest panic: status %d body %+v, want 422 execution", status, eb)
	}
	if st := getStats(t, ts); st.Guard.Quarantines != 1 || st.Guard.Rebuilds != 0 {
		t.Fatalf("guard stats after panic = %+v", st.Guard)
	}

	// The next run transparently rebuilds and answers.
	status, _, _ = runStatus(t, ts.URL+"/v1/deployments/"+depID+"/run", "", RunRequest{Entry: "sumsq", Args: []string{"10"}})
	if status != http.StatusOK {
		t.Fatalf("run after quarantine: status %d, want 200", status)
	}
	if st := getStats(t, ts); st.Guard.Quarantines != 1 || st.Guard.Rebuilds != 1 {
		t.Fatalf("guard stats after rebuild = %+v", st.Guard)
	}
}

func TestAdmissionShedsPerTenant(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxInflightPerTenant: 1})
	depID := deployGoverned(t, ts, 0, 0)
	runURL := ts.URL + "/v1/deployments/" + depID + "/run"

	// Hold tenant a's only slot with a slow run (injected handler latency,
	// inside the admission window).
	if err := faultinject.Arm("server.run:latency:500ms"); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Disarm()

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // slot holder
		defer wg.Done()
		if status, _, _ := runStatus(t, runURL, "a", RunRequest{Entry: "sumsq", Args: []string{"5"}}); status != http.StatusOK {
			t.Errorf("slot holder: status %d", status)
		}
	}()
	time.Sleep(100 * time.Millisecond)
	go func() { // deadline-less waiter: queues, runs when the slot frees
		defer wg.Done()
		if status, _, _ := runStatus(t, runURL, "a", RunRequest{Entry: "sumsq", Args: []string{"5"}}); status != http.StatusOK {
			t.Errorf("queued waiter: status %d", status)
		}
	}()
	time.Sleep(100 * time.Millisecond)

	// Third request: slot held, waiter queue full — shed.
	status, eb, hdr := runStatus(t, runURL, "a", RunRequest{Entry: "sumsq", Args: []string{"5"}})
	if status != http.StatusTooManyRequests {
		t.Fatalf("over-cap run: status %d, want 429", status)
	}
	if eb.Class != errClassResourceExhausted || !eb.Retryable {
		t.Fatalf("shed body = %+v, want retryable resource_exhausted", eb)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}

	// Another tenant is unaffected by a's saturation.
	if status, _, _ := runStatus(t, runURL, "b", RunRequest{Entry: "sumsq", Args: []string{"5"}}); status != http.StatusOK {
		t.Errorf("tenant b during a's overload: status %d, want 200", status)
	}

	wg.Wait()
	if st := getStats(t, ts); st.RunsShed < 1 {
		t.Errorf("RunsShed = %d, want >= 1", st.RunsShed)
	}
}

// TestRouterShedsDontFailover pins shed-don't-failover: a backend answering
// resource_exhausted — whether an admission shed (429) or a run-level
// governor breach (422) — proxies through the router verbatim. It must not
// charge the breaker, trigger failover, or redeploy the machine elsewhere:
// overload on a healthy backend is the client's signal to back off, not the
// router's cue to spread the overload.
func TestRouterShedsDontFailover(t *testing.T) {
	rt, front, _ := newTestFleet(t, 2, Config{MaxInflightPerTenant: 1})
	id := upload(t, front, encodeModule(t, sumsqSource))

	// A governed deployment through the router: the governor fields ride the
	// deploy recipe, and the breach surfaces typed end to end.
	resp := postJSON(t, front.URL+"/v1/deploy", DeployRequest{Module: id, Targets: []string{"mcu"}, MemLimit: 1})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("governed deploy via router: status %d", resp.StatusCode)
	}
	governedID := decodeJSON[DeployResponse](t, resp.Body).Deployments[0].ID
	resp.Body.Close()
	status, eb, _ := runStatus(t, front.URL+"/v1/deployments/"+governedID+"/run", "", RunRequest{Entry: "sumsq", Args: []string{"10"}})
	if status != http.StatusUnprocessableEntity || eb.Class != errClassResourceExhausted || eb.Retryable {
		t.Fatalf("governed breach via router: status %d body %+v, want 422 resource_exhausted", status, eb)
	}

	// An ungoverned deployment for the admission half: hold its backend's
	// only slot and fill the waiter queue, then overload it. Deadlines do
	// not cross the wire, so forwarded runs queue like any deadline-less
	// request until the waiter cap sheds them.
	resp = postJSON(t, front.URL+"/v1/deploy", DeployRequest{Module: id, Targets: []string{"mcu"}})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("deploy via router: status %d", resp.StatusCode)
	}
	depID := decodeJSON[DeployResponse](t, resp.Body).Deployments[0].ID
	resp.Body.Close()
	runURL := front.URL + "/v1/deployments/" + depID + "/run"

	if err := faultinject.Arm("server.run:latency:500ms"); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Disarm()
	var wg sync.WaitGroup
	wg.Add(2)
	for _, who := range []string{"slot holder", "queued waiter"} {
		go func() {
			defer wg.Done()
			if status, _, _ := runStatus(t, runURL, "", RunRequest{Entry: "sumsq", Args: []string{"5"}}); status != http.StatusOK {
				t.Errorf("%s via router: status %d", who, status)
			}
		}()
		time.Sleep(100 * time.Millisecond)
	}
	status, eb, hdr := runStatus(t, runURL, "", RunRequest{Entry: "sumsq", Args: []string{"5"}})
	if status != http.StatusTooManyRequests {
		t.Fatalf("overloaded run via router: status %d, want 429", status)
	}
	if eb.Class != errClassResourceExhausted || !eb.Retryable {
		t.Fatalf("shed via router = %+v, want retryable resource_exhausted", eb)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("router dropped the backend's Retry-After header")
	}
	wg.Wait()

	st := rt.Stats()
	if st.Failovers != 0 || st.FailoverRedeploys != 0 {
		t.Errorf("resource_exhausted triggered failover: %d failovers, %d redeploys", st.Failovers, st.FailoverRedeploys)
	}
	for i, b := range st.Backends {
		if !b.Healthy {
			t.Errorf("backend %d ejected by overload responses", i)
		}
	}
}

// TestJournalReplaysGovernor pins that the resource governor travels with
// the deployment across a crash/restart: a replayed machine is governed
// exactly like the one the client deployed.
func TestJournalReplaysGovernor(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	srv1 := New(splitvm.New(), Config{JournalPath: path})
	ts1 := httptest.NewServer(srv1)
	depID := deployGoverned(t, ts1, 1, 5000)
	ts1.Close()
	srv1.Close()

	srv2 := New(splitvm.New(), Config{JournalPath: path})
	ts2 := httptest.NewServer(srv2)
	defer func() { ts2.Close(); srv2.Close() }()

	resp, err := http.Get(ts2.URL + "/v1/deployments")
	if err != nil {
		t.Fatal(err)
	}
	list := decodeJSON[DeployResponse](t, resp.Body)
	resp.Body.Close()
	if len(list.Deployments) != 1 {
		t.Fatalf("replayed %d deployments, want 1", len(list.Deployments))
	}
	if d := list.Deployments[0]; d.ID != depID || d.MemLimit != 1 || d.RunDeadlineMillis != 5000 {
		t.Fatalf("replayed deployment = %+v, want governor intact", d)
	}
	status, eb, _ := runStatus(t, ts2.URL+"/v1/deployments/"+depID+"/run", "", RunRequest{Entry: "sumsq", Args: []string{"10"}})
	if status != http.StatusUnprocessableEntity || eb.Class != errClassResourceExhausted {
		t.Fatalf("replayed machine breach: status %d body %+v, want 422 resource_exhausted", status, eb)
	}
}
