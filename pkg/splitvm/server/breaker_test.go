package server

import (
	"testing"
	"time"
)

func TestBreakerOpensAfterConsecutiveFailures(t *testing.T) {
	bk := newBreaker(breakerConfig{failures: 3, successes: 2, cooldown: time.Minute})
	now := time.Now()
	for i := 0; i < 2; i++ {
		bk.onFailure(now)
		if !bk.allow(now) {
			t.Fatalf("breaker opened after %d failures, want 3", i+1)
		}
	}
	// A success resets the streak: two more failures must not trip it.
	bk.onSuccess()
	bk.onFailure(now)
	bk.onFailure(now)
	if !bk.allow(now) {
		t.Fatal("breaker opened though the failure streak was broken")
	}
	bk.onFailure(now)
	if bk.allow(now) {
		t.Fatal("breaker still closed after 3 consecutive failures")
	}
	if st, _, opens := bk.snapshot(); st != breakerOpen || opens != 1 {
		t.Fatalf("state %v opens %d, want open/1", st, opens)
	}
}

func TestBreakerHalfOpenProbing(t *testing.T) {
	bk := newBreaker(breakerConfig{failures: 1, successes: 2, cooldown: 10 * time.Millisecond})
	start := time.Now()
	bk.onFailure(start)
	if bk.allow(start.Add(5 * time.Millisecond)) {
		t.Fatal("open breaker admitted traffic inside the cooldown")
	}

	// Cooldown over: the next request is admitted as a half-open probe, but
	// one success is not enough to close — that's the readmission hysteresis.
	probe := start.Add(20 * time.Millisecond)
	if !bk.allow(probe) {
		t.Fatal("open breaker did not go half-open after the cooldown")
	}
	if st, _, _ := bk.snapshot(); st != breakerHalfOpen {
		t.Fatalf("state %v, want half-open", st)
	}
	bk.onSuccess()
	if st, _, _ := bk.snapshot(); st != breakerHalfOpen {
		t.Fatal("breaker closed after a single half-open success, want 2")
	}
	bk.onSuccess()
	if st, _, _ := bk.snapshot(); st != breakerClosed {
		t.Fatal("breaker did not close after enough half-open successes")
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	bk := newBreaker(breakerConfig{failures: 1, successes: 2, cooldown: 10 * time.Millisecond})
	start := time.Now()
	bk.onFailure(start)
	probe := start.Add(20 * time.Millisecond)
	if !bk.allow(probe) {
		t.Fatal("no half-open probe after cooldown")
	}
	bk.onFailure(probe)
	if st, _, opens := bk.snapshot(); st != breakerOpen || opens != 2 {
		t.Fatalf("state %v opens %d after failed probe, want open/2", st, opens)
	}
	// And the new cooldown starts from the re-trip.
	if bk.allow(probe.Add(5 * time.Millisecond)) {
		t.Fatal("re-opened breaker admitted traffic inside the new cooldown")
	}
}
