package server

import (
	"context"

	"repro/internal/target"
	"repro/pkg/splitvm"
)

// deployJob is one machine to instantiate. res is buffered so a worker's
// send never blocks: a client that gave up (cancelled request, rejected
// batch) simply abandons the result.
type deployJob struct {
	ctx  context.Context
	m    *splitvm.Module
	opts []splitvm.DeployOption
	res  chan deployResult
}

type deployResult struct {
	dep *splitvm.Deployment
	err error
}

// pool is the per-target deployment executor: a bounded queue drained by a
// fixed set of workers. The bound is the server's backpressure valve — when
// it is full, trySubmit fails and the caller answers 429 instead of letting
// one saturated target queue work without limit.
type pool struct {
	arch target.Arch
	jobs chan *deployJob
}

// trySubmit enqueues without blocking; false means the queue is full.
func (p *pool) trySubmit(j *deployJob) bool {
	select {
	case p.jobs <- j:
		return true
	default:
		return false
	}
}

// poolFor returns the pool for one target, creating it (and starting its
// workers) on first use.
func (s *Server) poolFor(a target.Arch) *pool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if p, ok := s.pools[a]; ok {
		return p
	}
	p := &pool{arch: a, jobs: make(chan *deployJob, s.cfg.QueueDepth)}
	s.pools[a] = p
	for i := 0; i < s.cfg.WorkersPerTarget; i++ {
		s.wg.Add(1)
		go s.worker(p)
	}
	return p
}

// worker drains one pool until the server closes. Deployments instantiate
// machines from the engine's code cache, so after the first job per
// (module, options) key the work per job is a cheap machine construction.
func (s *Server) worker(p *pool) {
	defer s.wg.Done()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case j := <-p.jobs:
			if gate := s.gateDeploy; gate != nil {
				gate()
			}
			dep, err := s.eng.DeployContext(j.ctx, j.m, j.opts...)
			j.res <- deployResult{dep: dep, err: err}
		}
	}
}
