package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/pkg/splitvm"
)

const sumsqSource = `
i64 sumsq(i32 n) {
    i64 s = 0;
    for (i32 i = 1; i <= n; i++) { s = s + (i64) (i * i); }
    return s;
}
`

// encodeModule runs the offline compiler out of band (the role of cmd/svc)
// and returns the deployable byte stream.
func encodeModule(t *testing.T, source string) []byte {
	t.Helper()
	offline := splitvm.New()
	m, err := offline.Compile(source, splitvm.WithModuleName("test"))
	if err != nil {
		t.Fatal(err)
	}
	return m.Encoded()
}

// newTestServer wires a Server over a fresh engine into httptest.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(splitvm.New(), cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func decodeJSON[T any](t *testing.T, body io.Reader) T {
	t.Helper()
	var v T
	if err := json.NewDecoder(body).Decode(&v); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return v
}

// upload posts an encoded module and returns its id.
func upload(t *testing.T, ts *httptest.Server, encoded []byte) string {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/modules", "application/octet-stream", bytes.NewReader(encoded))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("upload: status %d: %s", resp.StatusCode, body)
	}
	info := decodeJSON[ModuleInfo](t, resp.Body)
	if info.ID == "" {
		t.Fatal("upload returned empty module id")
	}
	return info.ID
}

func postJSON(t *testing.T, url string, req any) *http.Response {
	t.Helper()
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func getStats(t *testing.T, ts *httptest.Server) StatsResponse {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: status %d", resp.StatusCode)
	}
	return decodeJSON[StatsResponse](t, resp.Body)
}

// TestUploadDeployRunStats is the full client walkthrough: upload an encoded
// module, batch deploy it on two targets with two replicas each, invoke the
// entry point on every machine, and read the stats.
func TestUploadDeployRunStats(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := upload(t, ts, encodeModule(t, sumsqSource))

	resp := postJSON(t, ts.URL+"/v1/deploy", DeployRequest{
		Module:   id,
		Targets:  []string{"x86-sse", "mcu"},
		Replicas: 2,
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("deploy: status %d: %s", resp.StatusCode, body)
	}
	batch := decodeJSON[DeployResponse](t, resp.Body)
	if len(batch.Deployments) != 4 {
		t.Fatalf("deployed %d machines, want 4", len(batch.Deployments))
	}

	// Same module, same options: within each target one JIT compilation at
	// most — so across 4 machines on 2 targets at least 2 were cache-served.
	cached := 0
	for _, d := range batch.Deployments {
		if d.FromCache {
			cached++
		}
	}
	if cached < 2 {
		t.Errorf("only %d of 4 replicas came from the code cache, want >= 2", cached)
	}

	for _, d := range batch.Deployments {
		resp := postJSON(t, ts.URL+"/v1/deployments/"+d.ID+"/run", RunRequest{
			Entry: "sumsq",
			Args:  []string{"100"},
		})
		run := decodeJSON[RunResponse](t, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("run on %s: status %d", d.ID, resp.StatusCode)
		}
		if run.Value != 338350 {
			t.Errorf("sumsq(100) on %s (%s) = %d, want 338350", d.ID, d.Target, run.Value)
		}
		if run.Cycles <= 0 {
			t.Errorf("run on %s reported %d cycles, want > 0", d.ID, run.Cycles)
		}
	}

	st := getStats(t, ts)
	if st.Modules != 1 || st.Deployments != 4 {
		t.Errorf("stats report %d modules / %d deployments, want 1/4", st.Modules, st.Deployments)
	}
	if st.Cache.Misses != 2 {
		t.Errorf("cache misses = %d, want one JIT per target (2)", st.Cache.Misses)
	}
	if st.Cache.Hits < 2 {
		t.Errorf("cache hits = %d, want >= 2", st.Cache.Hits)
	}
	if len(st.Pools) != 2 {
		t.Errorf("stats report %d pools, want 2", len(st.Pools))
	}
}

// TestConcurrentBatchDeploysShareCache drives many concurrent batch deploys
// of the same module through the server (the acceptance scenario). Under
// -race this exercises the handler registries, the worker pools and the
// engine cache concurrently; afterwards the cache must show exactly one JIT
// compilation per target and hits for everything else.
func TestConcurrentBatchDeploysShareCache(t *testing.T) {
	_, ts := newTestServer(t, Config{WorkersPerTarget: 4, QueueDepth: 128})
	id := upload(t, ts, encodeModule(t, sumsqSource))

	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := postJSON(t, ts.URL+"/v1/deploy", DeployRequest{
				Module:   id,
				Targets:  []string{"x86-sse", "ultrasparc"},
				Replicas: 2,
			})
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusCreated {
				body, _ := io.ReadAll(resp.Body)
				errs <- fmt.Errorf("deploy: status %d: %s", resp.StatusCode, body)
				return
			}
			batch := decodeJSON[DeployResponse](t, resp.Body)
			if len(batch.Deployments) != 4 {
				errs <- fmt.Errorf("deployed %d machines, want 4", len(batch.Deployments))
				return
			}
			// Every machine of every concurrent batch must be runnable and
			// compute the same result.
			d := batch.Deployments[0]
			rr := postJSON(t, ts.URL+"/v1/deployments/"+d.ID+"/run", RunRequest{Entry: "sumsq", Args: []string{"50"}})
			run := decodeJSON[RunResponse](t, rr.Body)
			rr.Body.Close()
			if run.Value != 42925 {
				errs <- fmt.Errorf("sumsq(50) = %d, want 42925", run.Value)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := getStats(t, ts)
	total := st.Cache.Hits + st.Cache.Misses
	if total != clients*4 {
		t.Errorf("cache accounted %d deployments, want %d", total, clients*4)
	}
	if st.Cache.Misses != 2 {
		t.Errorf("cache misses = %d, want one JIT compilation per target (2)", st.Cache.Misses)
	}
	if st.Cache.Hits <= 0 {
		t.Errorf("cache hits = %d, want > 0 (batches must share the cache)", st.Cache.Hits)
	}
	if st.Deployments != clients*4 {
		t.Errorf("stats report %d deployments, want %d", st.Deployments, clients*4)
	}
}

// TestBackpressure429 saturates a deliberately tiny pool (one worker, queue
// depth one, workers held by a gate) and checks that excess batches are
// rejected with 429 + Retry-After instead of queueing without bound, and
// that the held batches complete once the gate opens.
func TestBackpressure429(t *testing.T) {
	srv, ts := newTestServer(t, Config{WorkersPerTarget: 1, QueueDepth: 1, RetryAfter: 2 * time.Second})
	gate := make(chan struct{})
	// Workers start lazily on the first deploy, so setting the hook before
	// any request is race-free.
	srv.gateDeploy = func() { <-gate }

	id := upload(t, ts, encodeModule(t, sumsqSource))

	// With one worker (held at the gate) and one queue slot, at most two
	// jobs fit in the system; firing four single-deploy batches must reject
	// at least two of them immediately.
	const batches = 4
	var wg sync.WaitGroup
	type outcome struct {
		status     int
		retryAfter string
	}
	outcomes := make(chan outcome, batches)
	for i := 0; i < batches; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := postJSON(t, ts.URL+"/v1/deploy", DeployRequest{Module: id, Targets: []string{"mcu"}})
			defer resp.Body.Close()
			io.Copy(io.Discard, resp.Body)
			outcomes <- outcome{status: resp.StatusCode, retryAfter: resp.Header.Get("Retry-After")}
		}()
	}

	// Open the gate once enough batches were rejected (only two jobs fit in
	// the system, so with four batches the count must reach two); the
	// rejected ones have already answered by then.
	go func() {
		defer close(gate) // worst case the test fails on outcome counts, not a hang
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			srv.mu.Lock()
			rejected := srv.rejected
			srv.mu.Unlock()
			if rejected >= batches-2 {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	wg.Wait()
	close(outcomes)
	var ok, rejected int
	for o := range outcomes {
		switch o.status {
		case http.StatusCreated:
			ok++
		case http.StatusTooManyRequests:
			rejected++
			if o.retryAfter == "" {
				t.Error("429 response missing Retry-After header")
			}
		default:
			t.Errorf("unexpected deploy status %d", o.status)
		}
	}
	if rejected < 2 {
		t.Errorf("%d batches rejected with 429, want >= 2 under saturation", rejected)
	}
	if ok < 1 {
		t.Errorf("%d batches succeeded, want >= 1 (held jobs must finish after the gate opens)", ok)
	}
	if st := getStats(t, ts); st.Rejected != int64(rejected) {
		t.Errorf("stats count %d rejections, client saw %d", st.Rejected, rejected)
	}
}

// TestDeployValidation exercises the request validation paths.
func TestDeployValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := upload(t, ts, encodeModule(t, sumsqSource))

	cases := []struct {
		name string
		req  DeployRequest
		want int
	}{
		{"unknown module", DeployRequest{Module: "nope", Targets: []string{"mcu"}}, http.StatusNotFound},
		{"unknown target", DeployRequest{Module: id, Targets: []string{"vax"}}, http.StatusBadRequest},
		{"no targets", DeployRequest{Module: id}, http.StatusBadRequest},
		{"bad reg_alloc", DeployRequest{Module: id, Targets: []string{"mcu"}, RegAlloc: "mystic"}, http.StatusBadRequest},
		{"negative replicas", DeployRequest{Module: id, Targets: []string{"mcu"}, Replicas: -1}, http.StatusBadRequest},
		{"oversized batch", DeployRequest{Module: id, Targets: []string{"mcu"}, Replicas: 10_000}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp := postJSON(t, ts.URL+"/v1/deploy", tc.req)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
}

// TestRunValidation exercises the invocation error paths.
func TestRunValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := upload(t, ts, encodeModule(t, sumsqSource))
	resp := postJSON(t, ts.URL+"/v1/deploy", DeployRequest{Module: id, Targets: []string{"x86-sse"}})
	batch := decodeJSON[DeployResponse](t, resp.Body)
	resp.Body.Close()
	dep := batch.Deployments[0].ID

	cases := []struct {
		name string
		url  string
		req  RunRequest
		want int
	}{
		{"unknown deployment", ts.URL + "/v1/deployments/d-999999/run", RunRequest{Entry: "sumsq", Args: []string{"1"}}, http.StatusNotFound},
		{"unknown entry", ts.URL + "/v1/deployments/" + dep + "/run", RunRequest{Entry: "nope"}, http.StatusNotFound},
		{"missing entry", ts.URL + "/v1/deployments/" + dep + "/run", RunRequest{}, http.StatusBadRequest},
		{"arity mismatch", ts.URL + "/v1/deployments/" + dep + "/run", RunRequest{Entry: "sumsq"}, http.StatusBadRequest},
		{"bad argument", ts.URL + "/v1/deployments/" + dep + "/run", RunRequest{Entry: "sumsq", Args: []string{"banana"}}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp := postJSON(t, tc.url, tc.req)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
}

// TestUploadValidation rejects junk and oversized uploads.
func TestUploadValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxModuleBytes: 64})

	resp, err := http.Post(ts.URL+"/v1/modules", "application/octet-stream", bytes.NewReader([]byte("not a module")))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage upload: status %d, want 400", resp.StatusCode)
	}

	resp, err = http.Post(ts.URL+"/v1/modules", "application/octet-stream", bytes.NewReader(make([]byte, 128)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized upload: status %d, want 413", resp.StatusCode)
	}
}

// TestUploadIdempotent checks content addressing: uploading the same bytes
// twice yields the same id and one registry entry.
func TestUploadIdempotent(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	encoded := encodeModule(t, sumsqSource)
	id1 := upload(t, ts, encoded)
	id2 := upload(t, ts, encoded)
	if id1 != id2 {
		t.Errorf("same module uploaded twice got ids %s and %s", id1, id2)
	}
	if st := getStats(t, ts); st.Modules != 1 {
		t.Errorf("registry holds %d modules, want 1", st.Modules)
	}
}

// TestGracefulClose: after Close the pools are drained and new work is
// refused with 503.
func TestGracefulClose(t *testing.T) {
	srv := New(splitvm.New(), Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	id := upload(t, ts, encodeModule(t, sumsqSource))
	resp := postJSON(t, ts.URL+"/v1/deploy", DeployRequest{Module: id, Targets: []string{"mcu"}})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("deploy before close: status %d", resp.StatusCode)
	}

	done := make(chan struct{})
	go func() { srv.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not return; worker pools leaked")
	}

	resp = postJSON(t, ts.URL+"/v1/deploy", DeployRequest{Module: id, Targets: []string{"mcu"}})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("deploy after close: status %d, want 503", resp.StatusCode)
	}
}
