package server

// Deployment-journal wiring: the server appends one record per module
// upload, deployment registration and eviction to an internal/journal file,
// and replays it in New, re-instantiating every live deployment from the
// engine (warm via the disk cache when one is configured). A SIGKILLed
// backend therefore restarts with its deployment table intact — the journal
// is the missing half of the warm-restart story, recovering *deployments*
// where the disk cache alone recovered only compiled images.

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/faultinject"
	"repro/internal/journal"
	"repro/internal/target"
	"repro/pkg/splitvm"
)

// Journal record operations. Module records carry the raw encoded module
// (modules live only in server memory, so replay needs the bytes); deploy
// and evict records carry JSON.
const (
	journalOpModule = "module"
	journalOpDeploy = "deploy"
	journalOpEvict  = "evict"
)

// journalDeployRecord is the JSON payload of one deploy record: the
// parameters needed to re-instantiate the machine. Simulated memory and
// run statistics are deliberately not journaled — a machine restarts
// fresh, like a rebooted device; what must survive is the deployment's
// existence, identity and compilation options.
type journalDeployRecord struct {
	ID             string `json:"id"`
	Module         string `json:"module"`
	Target         string `json:"target"`
	Tenant         string `json:"tenant,omitempty"`
	RegAlloc       string `json:"reg_alloc,omitempty"`
	ForceScalarize bool   `json:"force_scalarize,omitempty"`
	Lazy           bool   `json:"lazy,omitempty"`
	Tiering        bool   `json:"tiering,omitempty"`
	PromoteCalls   int64  `json:"promote_calls,omitempty"`
	Profile        []byte `json:"profile,omitempty"`
	// The resource governor travels with the deployment: a replayed machine
	// is governed exactly like the one the client originally deployed.
	MemLimit          int64 `json:"mem_limit,omitempty"`
	RunDeadlineMillis int64 `json:"run_deadline_ms,omitempty"`
}

// journalEvictRecord is the JSON payload of one evict record.
type journalEvictRecord struct {
	ID string `json:"id"`
}

// JournalStatsResponse is the journal section of /v1/stats (present only
// when the server runs with a journal).
type JournalStatsResponse struct {
	// Journal carries the file's own persistence counters.
	Journal journal.Stats `json:"journal"`
	// ReplayedModules and ReplayedDeployments count registry entries
	// restored by the last startup replay.
	ReplayedModules     int `json:"replayed_modules"`
	ReplayedDeployments int `json:"replayed_deployments"`
	// ReplayFailed counts records that could not be applied (module missing,
	// target unknown, deploy error). Failures degrade to a smaller restored
	// registry, never to a failed startup.
	ReplayFailed int `json:"replay_failed"`
	// AppendErrors counts records that failed to persist after startup (full
	// disk). The server keeps serving; the journal is best-effort durable.
	AppendErrors int64 `json:"append_errors"`
}

// JournalErr reports why the deployment journal is unavailable. New keeps
// the error rather than failing, so callers that require durability (like
// cmd/svd with -journal) can check it and abort startup, while tests and
// embedded uses keep working memory-only.
func (s *Server) JournalErr() error { return s.journalErr }

// openJournal opens and replays the journal, then compacts it. Called from
// New before the server serves traffic, so no locking is needed.
func (s *Server) openJournal(path string) {
	j, recs, err := journal.Open(path)
	if err != nil {
		s.journalErr = err
		return
	}
	s.jnl = j
	s.moduleBytes = make(map[string][]byte)
	s.replayJournal(recs)
	s.compactJournal()
}

// replayJournal applies the journal's records to the empty registries:
// module records re-load encoded modules, deploy records re-instantiate
// machines through the engine (a disk-cache hit when the cache survived
// with the journal), evict records drop earlier deploys. Any record that
// no longer applies is counted and skipped — replay degrades, it never
// fails the boot.
func (s *Server) replayJournal(recs []journal.Record) {
	type depState struct {
		rec journalDeployRecord
	}
	var order []string
	deploys := make(map[string]*depState)
	for _, rec := range recs {
		switch rec.Op {
		case journalOpModule:
			m, err := s.eng.Load(rec.Data)
			if err != nil {
				s.replayFailed++
				continue
			}
			id := m.Hash()
			if _, ok := s.modules[id]; !ok {
				s.modules[id] = m
				s.moduleOrder = append(s.moduleOrder, id)
				s.moduleBytes[id] = append([]byte(nil), rec.Data...)
				s.replayedModules++
			}
		case journalOpDeploy:
			var dr journalDeployRecord
			if err := json.Unmarshal(rec.Data, &dr); err != nil || dr.ID == "" {
				s.replayFailed++
				continue
			}
			if _, dup := deploys[dr.ID]; !dup {
				order = append(order, dr.ID)
			}
			deploys[dr.ID] = &depState{rec: dr}
		case journalOpEvict:
			var er journalEvictRecord
			if err := json.Unmarshal(rec.Data, &er); err != nil {
				s.replayFailed++
				continue
			}
			delete(deploys, er.ID)
		default:
			s.replayFailed++
		}
	}

	now := time.Now()
	for _, id := range order {
		st, ok := deploys[id]
		if !ok {
			continue // evicted later in the log
		}
		ld, err := s.instantiateFromJournal(st.rec)
		if err != nil {
			s.replayFailed++
			continue
		}
		ld.lastUsed = now
		s.deployments[id] = ld
		s.deployOrder = append(s.deployOrder, id)
		s.byModule[ld.module]++
		s.byTenant[ld.tenant]++
		s.replayedDeployments++
		var n int64
		if _, err := fmt.Sscanf(id, "d-%d", &n); err == nil && n > s.nextDep {
			s.nextDep = n
		}
	}
}

// instantiateFromJournal rebuilds one machine from its deploy record.
func (s *Server) instantiateFromJournal(dr journalDeployRecord) (*liveDeployment, error) {
	m, ok := s.modules[dr.Module]
	if !ok {
		return nil, fmt.Errorf("module %s not in journal", dr.Module)
	}
	arch := target.Arch(dr.Target)
	if _, err := target.Lookup(arch); err != nil {
		return nil, err
	}
	mode, err := regAllocMode(dr.RegAlloc)
	if err != nil {
		return nil, err
	}
	opts := []splitvm.DeployOption{
		splitvm.WithTarget(arch),
		splitvm.WithRegAllocMode(mode),
		splitvm.WithForceScalarize(dr.ForceScalarize),
		splitvm.WithLazyCompile(dr.Lazy),
	}
	if dr.Tiering || dr.PromoteCalls != 0 || len(dr.Profile) > 0 {
		opts = append(opts, splitvm.WithTiering(true))
	}
	if dr.PromoteCalls != 0 {
		opts = append(opts, splitvm.WithPromoteCalls(dr.PromoteCalls))
	}
	if len(dr.Profile) > 0 {
		// Negotiate-or-fallback, like the deploy route: a profile this
		// build cannot decode restores the deployment without warm counters.
		if p, err := splitvm.DecodeProfile(dr.Profile); err == nil {
			opts = append(opts, splitvm.WithProfile(p))
		}
	}
	if dr.MemLimit > 0 {
		opts = append(opts, splitvm.WithMemLimit(dr.MemLimit))
	}
	if dr.RunDeadlineMillis > 0 {
		opts = append(opts, splitvm.WithRunDeadline(time.Duration(dr.RunDeadlineMillis)*time.Millisecond))
	}
	dep, err := s.eng.Deploy(m, opts...)
	if err != nil {
		return nil, err
	}
	tenant := dr.Tenant
	if tenant == "" {
		tenant = "default"
	}
	return &liveDeployment{
		id:                dr.ID,
		module:            dr.Module,
		tenant:            tenant,
		arch:              arch,
		dep:               dep,
		regAlloc:          dr.RegAlloc,
		forceScalarize:    dr.ForceScalarize,
		lazy:              dr.Lazy,
		tiering:           dr.Tiering,
		promoteCalls:      dr.PromoteCalls,
		profile:           dr.Profile,
		memLimit:          dr.MemLimit,
		runDeadlineMillis: dr.RunDeadlineMillis,
	}, nil
}

// compactJournal rewrites the journal to the minimal record set for the
// current registries (modules in upload order, live deployments in
// registration order), discarding evict churn and records that failed to
// replay.
func (s *Server) compactJournal() {
	if s.jnl == nil {
		return
	}
	var recs []journal.Record
	for _, id := range s.moduleOrder {
		if data, ok := s.moduleBytes[id]; ok {
			recs = append(recs, journal.Record{Op: journalOpModule, Data: data})
		}
	}
	for _, id := range s.deployOrder {
		ld := s.deployments[id]
		data, err := json.Marshal(deployRecordOf(ld))
		if err != nil {
			continue
		}
		recs = append(recs, journal.Record{Op: journalOpDeploy, Data: data})
	}
	if err := s.jnl.Rewrite(recs); err != nil {
		s.journalAppendErrs++
	}
}

// deployRecordOf captures a live deployment as a journal record payload.
func deployRecordOf(ld *liveDeployment) journalDeployRecord {
	return journalDeployRecord{
		ID:                ld.id,
		Module:            ld.module,
		Target:            string(ld.arch),
		Tenant:            ld.tenant,
		RegAlloc:          ld.regAlloc,
		ForceScalarize:    ld.forceScalarize,
		Lazy:              ld.lazy,
		Tiering:           ld.tiering,
		PromoteCalls:      ld.promoteCalls,
		Profile:           ld.profile,
		MemLimit:          ld.memLimit,
		RunDeadlineMillis: ld.runDeadlineMillis,
	}
}

// appendJournal persists one record, counting (but not surfacing) failures:
// an unwritable journal degrades durability, it must not take down serving.
// Caller holds s.mu, which also gives journal records the registry's order.
func (s *Server) appendJournal(op string, data []byte) {
	if s.jnl == nil {
		return
	}
	if f := faultinject.At("journal.append"); f != nil {
		if err := f.Apply(); err != nil {
			s.journalAppendErrs++
			return
		}
	}
	if err := s.jnl.Append(journal.Record{Op: op, Data: data}); err != nil {
		s.journalAppendErrs++
	}
}

// appendJournalJSON marshals v and persists it under op.
func (s *Server) appendJournalJSON(op string, v any) {
	if s.jnl == nil {
		return
	}
	data, err := json.Marshal(v)
	if err != nil {
		s.journalAppendErrs++
		return
	}
	s.appendJournal(op, data)
}
