package server

// Adaptive admission control for the run routes. Deploy batches already had
// backpressure (bounded pool queues, deployment quotas); admission is the
// same contract for invocations: with Config.MaxInflightPerTenant set, each
// tenant may have at most that many run or run-batch requests in flight.
// A request over the cap is shed with 429, error_class "resource_exhausted"
// and retryable true — the overloaded-but-healthy signal a router must not
// treat as a backend failure (shed, don't fail over).
//
// Shedding is deadline-aware: a request that carries a deadline is shed
// immediately when its tenant is saturated (the client has a time budget;
// queueing would spend it waiting), while a deadline-less request may wait
// for a slot — but only behind a bounded number of other waiters, so the
// queue, like every queue in this server, cannot grow without bound.

import (
	"context"
	"sync"
	"sync/atomic"
)

// admission is the per-tenant in-flight limiter shared by the run routes.
// A nil or zero-capacity admission admits everything (the default).
type admission struct {
	capacity int // in-flight cap per tenant; <= 0 disables admission

	mu    sync.Mutex
	gates map[string]*tenantGate
	shed  atomic.Int64
}

// tenantGate is one tenant's slot pool. slots is buffered to capacity: a
// send acquires a slot, a receive releases it. waiters bounds the
// deadline-less queue (guarded by admission.mu).
type tenantGate struct {
	slots   chan struct{}
	waiters int
}

func newAdmission(capacity int) *admission {
	return &admission{capacity: capacity, gates: make(map[string]*tenantGate)}
}

func (a *admission) gateFor(tenant string) *tenantGate {
	a.mu.Lock()
	defer a.mu.Unlock()
	g, ok := a.gates[tenant]
	if !ok {
		g = &tenantGate{slots: make(chan struct{}, a.capacity)}
		a.gates[tenant] = g
	}
	return g
}

// acquire admits one request for the tenant. On admission it returns a
// release function (call exactly once, when the request's run work is done)
// and true; on shed it returns false and counts the shed. ctx is the
// request context: its deadline selects immediate shedding over queueing,
// and its cancellation aborts a queued wait.
func (a *admission) acquire(ctx context.Context, tenant string) (release func(), ok bool) {
	if a == nil || a.capacity <= 0 {
		return func() {}, true
	}
	g := a.gateFor(tenant)
	select {
	case g.slots <- struct{}{}:
		return func() { <-g.slots }, true
	default:
	}
	// Saturated. A deadline-carrying request sheds now — its time budget is
	// better spent retrying elsewhere than queueing here — and the
	// deadline-less queue is capped at one full round of waiters.
	if _, hasDeadline := ctx.Deadline(); hasDeadline {
		a.shed.Add(1)
		return nil, false
	}
	a.mu.Lock()
	if g.waiters >= a.capacity {
		a.mu.Unlock()
		a.shed.Add(1)
		return nil, false
	}
	g.waiters++
	a.mu.Unlock()
	defer func() {
		a.mu.Lock()
		g.waiters--
		a.mu.Unlock()
	}()
	select {
	case g.slots <- struct{}{}:
		return func() { <-g.slots }, true
	case <-ctx.Done():
		a.shed.Add(1)
		return nil, false
	}
}

// shedCount reports how many requests admission has shed since startup.
func (a *admission) shedCount() int64 {
	if a == nil {
		return 0
	}
	return a.shed.Load()
}
