package server

import (
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/pkg/splitvm"
)

// journaledServer builds a server over a shared disk cache + journal pair,
// the durable-backend configuration of cmd/svd.
func journaledServer(t *testing.T, cacheDir, journalPath string) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(splitvm.New(splitvm.WithDiskCache(cacheDir)), Config{JournalPath: journalPath})
	if err := srv.JournalErr(); err != nil {
		t.Fatalf("journal: %v", err)
	}
	ts := httptest.NewServer(srv)
	return srv, ts
}

// TestJournalReplayRestoresDeployments is the warm-restart contract, now
// for deployments and not just images: kill a journaled backend, restart
// it over the same cache volume and journal, and the full deployment table
// comes back — same ids, zero compilations — with runs working immediately.
func TestJournalReplayRestoresDeployments(t *testing.T) {
	dir := t.TempDir()
	cacheDir := filepath.Join(dir, "cache")
	journalPath := filepath.Join(dir, "svd.journal")

	srv1, ts1 := journaledServer(t, cacheDir, journalPath)
	id := upload(t, ts1, encodeModule(t, sumsqSource))
	resp := postJSON(t, ts1.URL+"/v1/deploy", DeployRequest{
		Module:  id,
		Targets: []string{"x86-sse", "mcu"},
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("deploy: status %d", resp.StatusCode)
	}
	dep := decodeJSON[DeployResponse](t, resp.Body)
	resp.Body.Close()
	if len(dep.Deployments) != 2 {
		t.Fatalf("deployed %d machines, want 2", len(dep.Deployments))
	}
	depID := dep.Deployments[0].ID

	run := func(ts *httptest.Server) int64 {
		resp := postJSON(t, ts.URL+"/v1/deployments/"+depID+"/run", RunRequest{Entry: "sumsq", Args: []string{"12"}})
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("run: status %d", resp.StatusCode)
		}
		return decodeJSON[RunResponse](t, resp.Body).Value
	}
	want := run(ts1)

	// No graceful shutdown: drop the server on the floor like a SIGKILL
	// (the journal must not depend on a clean close).
	ts1.Close()
	_ = srv1

	srv2, ts2 := journaledServer(t, cacheDir, journalPath)
	defer func() { ts2.Close(); srv2.Close() }()

	st := getStats(t, ts2)
	if st.Deployments != 2 || st.Modules != 1 {
		t.Fatalf("restored %d deployments / %d modules, want 2 / 1", st.Deployments, st.Modules)
	}
	if st.Journal == nil || st.Journal.ReplayedDeployments != 2 || st.Journal.ReplayFailed != 0 {
		t.Fatalf("journal stats after replay: %+v", st.Journal)
	}
	if st.Compile.Compilations != 0 {
		t.Fatalf("replay recompiled %d images; want 0 (disk cache)", st.Compile.Compilations)
	}
	if got := run(ts2); got != want {
		t.Fatalf("replayed deployment computed %d, want %d", got, want)
	}

	// New deployments after a replay must not collide with restored ids.
	resp = postJSON(t, ts2.URL+"/v1/deploy", DeployRequest{Module: id, Targets: []string{"mcu"}})
	defer resp.Body.Close()
	more := decodeJSON[DeployResponse](t, resp.Body)
	if len(more.Deployments) != 1 {
		t.Fatalf("post-replay deploy failed: %+v", more)
	}
	newID := more.Deployments[0].ID
	if newID == dep.Deployments[0].ID || newID == dep.Deployments[1].ID {
		t.Fatalf("post-replay deployment id %q collides with a restored one", newID)
	}
}

// TestJournalReplayHonorsEvictions pins that evict records mask earlier
// deploy records: an evicted machine stays gone across restarts while the
// module (and its quota slot) is reusable.
func TestJournalReplayHonorsEvictions(t *testing.T) {
	dir := t.TempDir()
	cacheDir := filepath.Join(dir, "cache")
	journalPath := filepath.Join(dir, "svd.journal")

	srv1, ts1 := journaledServer(t, cacheDir, journalPath)
	id := upload(t, ts1, encodeModule(t, sumsqSource))
	resp := postJSON(t, ts1.URL+"/v1/deploy", DeployRequest{Module: id, Targets: []string{"mcu"}})
	resp.Body.Close()
	if n := srv1.evictIdle(time.Now().Add(time.Hour)); n != 1 {
		t.Fatalf("evicted %d, want 1", n)
	}
	ts1.Close()

	srv2, ts2 := journaledServer(t, cacheDir, journalPath)
	defer func() { ts2.Close(); srv2.Close() }()
	st := getStats(t, ts2)
	if st.Deployments != 0 {
		t.Fatalf("evicted deployment came back: %d live", st.Deployments)
	}
	if st.Modules != 1 {
		t.Fatalf("module lost across restart: %d", st.Modules)
	}
}

// TestJournalAppendFaultDegrades pins that an unwritable journal (injected
// at the journal.append site) never fails the request it rode on.
func TestJournalAppendFaultDegrades(t *testing.T) {
	dir := t.TempDir()
	_, ts := journaledServer(t, filepath.Join(dir, "cache"), filepath.Join(dir, "svd.journal"))
	defer ts.Close()
	if err := faultinject.Arm("journal.append:error"); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Disarm()

	id := upload(t, ts, encodeModule(t, sumsqSource))
	resp := postJSON(t, ts.URL+"/v1/deploy", DeployRequest{Module: id, Targets: []string{"mcu"}})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("deploy with failing journal: status %d, want 201", resp.StatusCode)
	}
	st := getStats(t, ts)
	if st.Journal == nil || st.Journal.AppendErrors == 0 {
		t.Fatalf("append failures not counted: %+v", st.Journal)
	}
}

// TestRunErrorClasses pins the structured per-item errors of run-batch:
// each failure mode carries its machine-readable class and retryability.
func TestRunErrorClasses(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := upload(t, ts, encodeModule(t, sumsqSource))
	resp := postJSON(t, ts.URL+"/v1/deploy", DeployRequest{Module: id, Targets: []string{"mcu"}})
	dep := decodeJSON[DeployResponse](t, resp.Body)
	resp.Body.Close()
	depID := dep.Deployments[0].ID

	cases := []struct {
		name      string
		req       RunBatchRequest
		wantClass string
		retryable bool
	}{
		{"unknown entry", RunBatchRequest{Deployments: []string{depID}, Entry: "nope"}, errClassNotFound, false},
		{"bad args", RunBatchRequest{Deployments: []string{depID}, Entry: "sumsq", Args: []string{"NaN-ish"}}, errClassBadRequest, false},
	}
	for _, tc := range cases {
		resp := postJSON(t, ts.URL+"/v1/run-batch", tc.req)
		out := decodeJSON[RunBatchResponse](t, resp.Body)
		resp.Body.Close()
		if len(out.Results) != 1 {
			t.Fatalf("%s: %d results", tc.name, len(out.Results))
		}
		r := out.Results[0]
		if r.Error == "" || r.ErrorClass != tc.wantClass || r.Retryable != tc.retryable {
			t.Fatalf("%s: got class %q retryable %v (%q), want %q/%v",
				tc.name, r.ErrorClass, r.Retryable, r.Error, tc.wantClass, tc.retryable)
		}
	}

	// An injected backend fault surfaces as unavailable + retryable.
	if err := faultinject.Arm("server.run:error"); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Disarm()
	resp2 := postJSON(t, ts.URL+"/v1/run-batch", RunBatchRequest{Deployments: []string{depID}, Entry: "sumsq", Args: []string{"4"}})
	out := decodeJSON[RunBatchResponse](t, resp2.Body)
	resp2.Body.Close()
	r := out.Results[0]
	if r.ErrorClass != errClassUnavailable || !r.Retryable {
		t.Fatalf("injected fault: class %q retryable %v, want unavailable/true", r.ErrorClass, r.Retryable)
	}
}
