package server

// Run failover: when a backend dies mid-run, the router re-creates the
// deployment on the next healthy replica (from the recipe recorded at
// deploy time) and retries the run there. Machines are stateless between
// runs in the common case — simulated memory does not survive a backend
// crash either way — so re-deploying elsewhere is semantically a device
// reboot, which the deployment model already embraces.

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"time"
)

// maxRunBackoff caps the exponential failover backoff.
const maxRunBackoff = 2 * time.Second

// resolveAlias follows the failed-over-deployment chain: every failover
// records old id → new id, so clients holding a pre-failover id keep
// working. The chain is bounded by the alias count to stay safe against a
// (never-written) cycle.
func (rt *Router) resolveAlias(id string) string {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for i := 0; i <= len(rt.alias); i++ {
		next, ok := rt.alias[id]
		if !ok {
			return id
		}
		id = next
	}
	return id
}

// runDeadline derives the per-run context bounding the whole request —
// first attempt, failover re-deploys, retries, backoff sleeps.
func (rt *Router) runDeadline(ctx context.Context) (context.Context, context.CancelFunc) {
	if rt.cfg.RunDeadline <= 0 {
		return context.WithCancel(ctx)
	}
	return context.WithTimeout(ctx, rt.cfg.RunDeadline)
}

// runWithFailover forwards one run to the deployment's current backend and,
// on a transport failure, fails it over to a surviving replica. The id must
// already be alias-resolved and well-formed.
func (rt *Router) runWithFailover(ctx context.Context, id string, body []byte) (*http.Response, error) {
	b, local, ok := rt.splitDeployID(id)
	if !ok {
		return nil, fmt.Errorf("unknown deployment %q", id)
	}
	resp, err := rt.forward(ctx, b, http.MethodPost, "/v1/deployments/"+local+"/run", body, "application/json")
	if err == nil {
		return resp, nil
	}
	return rt.failoverRun(ctx, id, b, body)
}

// failoverRun retries a run whose backend just failed: pick a survivor by
// the module's ring position, re-deploy the machine there, run. Candidates
// that fail are excluded and the next one tried; when every replica is
// excluded or open, the router backs off (exponentially, with jitter) and
// starts over with a clean slate — the fleet may be mid-recovery, and the
// original backend may even be back (restarted over its journal). The
// request's deadline bounds the whole loop.
func (rt *Router) failoverRun(ctx context.Context, id string, dead int, body []byte) (*http.Response, error) {
	rt.mu.Lock()
	meta, ok := rt.meta[id]
	rt.mu.Unlock()
	if !ok {
		rt.countFailoverFailed()
		return nil, fmt.Errorf("backend %s is unreachable and deployment %s predates this router (no re-create recipe)", rt.names[dead], id)
	}

	backoff := rt.cfg.RunBackoff
	excluded := map[int]bool{dead: true}
	var lastErr error
	for {
		if err := ctx.Err(); err != nil {
			rt.countFailoverFailed()
			return nil, fmt.Errorf("failover of %s: %w (last backend error: %v)", id, err, lastErr)
		}
		b := rt.pickSurvivor(meta.module, excluded)
		if b == -1 {
			if !sleepBackoff(ctx, backoff) {
				rt.countFailoverFailed()
				return nil, fmt.Errorf("failover of %s: %w (last backend error: %v)", id, ctx.Err(), lastErr)
			}
			backoff = nextBackoff(backoff)
			excluded = make(map[int]bool)
			continue
		}
		newLocal, err := rt.redeployOn(ctx, b, meta)
		if err != nil {
			lastErr = err
			excluded[b] = true
			continue
		}
		resp, err := rt.forward(ctx, b, http.MethodPost, "/v1/deployments/"+newLocal+"/run", body, "application/json")
		if err != nil {
			lastErr = err
			excluded[b] = true
			continue
		}
		rt.recordFailover(id, rt.prefixID(b, newLocal))
		return resp, nil
	}
}

// pickSurvivor places the module on the ring over the breakers' health
// vector minus the locally excluded backends.
func (rt *Router) pickSurvivor(module string, excluded map[int]bool) int {
	healthy, inflight := rt.snapshot()
	for b := range excluded {
		healthy[b] = false
	}
	return rt.ring.pick(module, healthy, inflight, rt.cfg.LoadFactor)
}

// redeployOn re-creates one machine from its recipe on backend b, narrowed
// to the failed machine's single target and one replica. Returns the new
// backend-local deployment id.
func (rt *Router) redeployOn(ctx context.Context, b int, meta deployMeta) (string, error) {
	req := meta.req
	req.Targets = []string{meta.target}
	req.Replicas = 1
	body, err := json.Marshal(req)
	if err != nil {
		return "", err
	}
	resp, err := rt.forward(ctx, b, http.MethodPost, "/v1/deploy", body, "application/json")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		var eb errorBody
		_ = json.NewDecoder(resp.Body).Decode(&eb)
		return "", fmt.Errorf("re-deploy on %s: status %d: %s", rt.names[b], resp.StatusCode, eb.Error)
	}
	var dr DeployResponse
	if err := json.NewDecoder(resp.Body).Decode(&dr); err != nil {
		return "", err
	}
	if len(dr.Deployments) != 1 {
		return "", fmt.Errorf("re-deploy on %s created %d machines, want 1", rt.names[b], len(dr.Deployments))
	}
	rt.mu.Lock()
	rt.failoverRedeploys++
	rt.mu.Unlock()
	return dr.Deployments[0].ID, nil
}

// recordFailover aliases the failed deployment to its replacement and moves
// the recipe with it, so future runs (and future failovers) follow.
func (rt *Router) recordFailover(oldID, newID string) {
	b, _, ok := rt.splitDeployID(newID)
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.alias[oldID] = newID
	if meta, found := rt.meta[oldID]; found && ok {
		meta.backend = b
		rt.meta[newID] = meta
		delete(rt.meta, oldID)
	}
	rt.failovers++
}

func (rt *Router) countFailoverFailed() {
	rt.mu.Lock()
	rt.failoverFailed++
	rt.mu.Unlock()
}

// metaIDsOn lists the (alias-free) deployments of one module the router
// placed on backend b, in stable order — the items a module-wide batch
// shard lost when that backend died.
func (rt *Router) metaIDsOn(module string, b int) []string {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	var out []string
	for id, m := range rt.meta {
		if m.module == module && m.backend == b {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// failoverBatchItem recovers one batch item whose shard died: run it alone
// through the failover path and translate the outcome to a structured
// per-item result (unavailable + retryable when even failover could not
// place it).
func (rt *Router) failoverBatchItem(ctx context.Context, nsID, entry string, args []string) RunBatchResult {
	res := RunBatchResult{Deployment: nsID}
	body, err := json.Marshal(RunRequest{Entry: entry, Args: args})
	if err != nil {
		res.Error = err.Error()
		res.ErrorClass = errClassBadRequest
		return res
	}
	resp, err := rt.runWithFailover(ctx, rt.resolveAlias(nsID), body)
	if err != nil {
		res.Error = err.Error()
		res.ErrorClass = errClassUnavailable
		res.Retryable = true
		return res
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var eb errorBody
		_ = json.NewDecoder(resp.Body).Decode(&eb)
		res.Error = eb.Error
		res.ErrorClass = eb.Class
		if res.ErrorClass == "" {
			res.ErrorClass = errClassExecution
		}
		res.Retryable = eb.Retryable
		return res
	}
	var rr RunResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		res.Error = err.Error()
		res.ErrorClass = errClassUnavailable
		res.Retryable = true
		return res
	}
	res.Deployment = rt.resolveAlias(nsID)
	res.Target = rr.Target
	res.Value = rr.Value
	res.Float = rr.Float
	res.IsFloat = rr.IsFloat
	res.Cycles = rr.Cycles
	return res
}

// sleepBackoff sleeps for d with ±50% jitter, or until ctx is done.
// Reports whether the sleep completed (false means the deadline fired).
func sleepBackoff(ctx context.Context, d time.Duration) bool {
	jittered := d/2 + time.Duration(rand.Int63n(int64(d)+1))
	t := time.NewTimer(jittered)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// nextBackoff doubles the backoff up to maxRunBackoff.
func nextBackoff(d time.Duration) time.Duration {
	d *= 2
	if d > maxRunBackoff {
		d = maxRunBackoff
	}
	return d
}
