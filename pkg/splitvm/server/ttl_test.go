package server

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// deployOne uploads sumsq and deploys it on one target, returning the
// deployment id.
func deployOne(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	id := upload(t, ts, encodeModule(t, sumsqSource))
	resp := postJSON(t, ts.URL+"/v1/deploy", DeployRequest{Module: id, Targets: []string{"x86-sse"}})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("deploy: status %d", resp.StatusCode)
	}
	dr := decodeJSON[DeployResponse](t, resp.Body)
	if len(dr.Deployments) != 1 {
		t.Fatalf("deploy: got %d deployments, want 1", len(dr.Deployments))
	}
	return dr.Deployments[0].ID
}

// TestDeployTTLEvictsIdleDeployments drives the sweeper's core directly:
// a deployment whose last use predates the cutoff disappears from the
// registry, is counted in /v1/stats, and running it answers 404 — while a
// fresh deployment survives.
func TestDeployTTLEvictsIdleDeployments(t *testing.T) {
	srv, ts := newTestServer(t, Config{})

	oldID := deployOne(t, ts)
	// Backdate the first deployment, then deploy a second one that stays
	// fresh.
	srv.mu.Lock()
	srv.deployments[oldID].lastUsed = time.Now().Add(-time.Hour)
	srv.mu.Unlock()
	freshID := deployOne(t, ts)

	if removed := srv.evictIdle(time.Now().Add(-time.Minute)); removed != 1 {
		t.Fatalf("evictIdle removed %d deployments, want 1", removed)
	}

	// The evicted machine is gone; the fresh one still runs.
	resp := postJSON(t, ts.URL+"/v1/deployments/"+oldID+"/run", RunRequest{Entry: "sumsq", Args: []string{"10"}})
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("running an evicted deployment: status %d, want 404", resp.StatusCode)
	}
	resp = postJSON(t, ts.URL+"/v1/deployments/"+freshID+"/run", RunRequest{Entry: "sumsq", Args: []string{"10"}})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("running a fresh deployment after the sweep: status %d, want 200", resp.StatusCode)
	}

	st := getStats(t, ts)
	if st.DeploymentsEvicted != 1 {
		t.Errorf("stats deployments_evicted = %d, want 1", st.DeploymentsEvicted)
	}
	if st.Deployments != 1 {
		t.Errorf("stats deployments = %d, want 1", st.Deployments)
	}
}

// TestDeployTTLSweeperRunsInBackground boots a server with a short TTL and
// waits for the ticker-driven sweeper to collect an idle deployment on its
// own.
func TestDeployTTLSweeperRunsInBackground(t *testing.T) {
	_, ts := newTestServer(t, Config{
		DeployTTL:           30 * time.Millisecond,
		DeploySweepInterval: 10 * time.Millisecond,
	})
	id := deployOne(t, ts)

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		st := getStats(t, ts)
		if st.Deployments == 0 && st.DeploymentsEvicted >= 1 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("deployment %s was never evicted by the background sweeper", id)
}

// TestRunRefreshesDeployTTL pins that running a deployment resets its
// idleness: a machine that keeps being used is never evicted even when it
// is older than the TTL.
func TestRunRefreshesDeployTTL(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	id := deployOne(t, ts)

	srv.mu.Lock()
	srv.deployments[id].lastUsed = time.Now().Add(-time.Hour)
	srv.mu.Unlock()

	// Running the stale deployment refreshes it...
	resp := postJSON(t, ts.URL+"/v1/deployments/"+id+"/run", RunRequest{Entry: "sumsq", Args: []string{"10"}})
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run: status %d", resp.StatusCode)
	}
	// ...so a sweep with a cutoff just before now leaves it alone.
	if removed := srv.evictIdle(time.Now().Add(-time.Minute)); removed != 0 {
		t.Errorf("evictIdle removed %d deployments after a refreshing run, want 0", removed)
	}

	// An in-flight invocation pins the deployment even when its lastUsed
	// is ancient: a run that outlasts the TTL must not lose its machine.
	srv.mu.Lock()
	srv.deployments[id].lastUsed = time.Now().Add(-time.Hour)
	srv.deployments[id].running = 1
	srv.mu.Unlock()
	if removed := srv.evictIdle(time.Now().Add(-time.Minute)); removed != 0 {
		t.Errorf("evictIdle removed %d deployments with a run in flight, want 0", removed)
	}
	srv.mu.Lock()
	srv.deployments[id].running = 0
	srv.mu.Unlock()
	if removed := srv.evictIdle(time.Now().Add(-time.Minute)); removed != 1 {
		t.Errorf("evictIdle removed %d deployments once the run finished, want 1", removed)
	}

	// Deploy responses carry the compile-time figure of the image build.
	st := getStats(t, ts)
	if st.Compile.Compilations < 1 || st.Compile.CompileNanosTotal <= 0 {
		t.Errorf("stats compile = %+v, want at least one timed compilation", st.Compile)
	}
}
