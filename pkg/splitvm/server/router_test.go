package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/pkg/splitvm"
)

// newTestFleet builds n backend servers plus a router in front, all wired
// through httptest. Active health probing is disabled so tests control
// backend liveness by closing the httptest servers.
func newTestFleet(t *testing.T, n int, cfg Config) (*Router, *httptest.Server, []*httptest.Server) {
	t.Helper()
	return newTestFleetCfg(t, n, cfg, RouterConfig{})
}

// newTestFleetCfg is newTestFleet with router knobs (breaker thresholds,
// deadlines) under test control. rcfg.Backends and HealthInterval are
// overwritten.
func newTestFleetCfg(t *testing.T, n int, cfg Config, rcfg RouterConfig) (*Router, *httptest.Server, []*httptest.Server) {
	t.Helper()
	backends := make([]*httptest.Server, n)
	urls := make([]string, n)
	for i := range backends {
		srv := New(splitvm.New(), cfg)
		ts := httptest.NewServer(srv)
		backends[i] = ts
		urls[i] = ts.URL
		t.Cleanup(func() {
			ts.Close()
			srv.Close()
		})
	}
	rcfg.Backends = urls
	rcfg.HealthInterval = -1
	rt, err := NewRouter(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt)
	t.Cleanup(func() {
		front.Close()
		rt.Close()
	})
	return rt, front, backends
}

func TestRouterEndToEnd(t *testing.T) {
	rt, front, _ := newTestFleet(t, 2, Config{})
	id := upload(t, front, encodeModule(t, sumsqSource))

	// Deploy through the router: IDs come back namespaced by backend.
	resp := postJSON(t, front.URL+"/v1/deploy", DeployRequest{Module: id, Targets: []string{"x86-sse", "mcu"}})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("deploy: status %d", resp.StatusCode)
	}
	dr := decodeJSON[DeployResponse](t, resp.Body)
	resp.Body.Close()
	if len(dr.Deployments) != 2 {
		t.Fatalf("%d deployments, want 2", len(dr.Deployments))
	}
	owner := rt.ring.owner(id)
	for _, d := range dr.Deployments {
		if want := fmt.Sprintf("b%d.", owner); !strings.HasPrefix(d.ID, want) {
			t.Errorf("deployment %s not namespaced to ring owner %s", d.ID, want)
		}
	}

	// Run through the router by namespaced ID.
	resp = postJSON(t, front.URL+"/v1/deployments/"+dr.Deployments[0].ID+"/run",
		RunRequest{Entry: "sumsq", Args: []string{"100"}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run: status %d", resp.StatusCode)
	}
	rr := decodeJSON[RunResponse](t, resp.Body)
	resp.Body.Close()
	if rr.Value != 338350 {
		t.Errorf("run value = %d, want 338350", rr.Value)
	}

	// Run-batch by module fans out and returns namespaced IDs.
	resp = postJSON(t, front.URL+"/v1/run-batch", RunBatchRequest{Module: id, Entry: "sumsq", Args: []string{"10"}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run-batch: status %d", resp.StatusCode)
	}
	br := decodeJSON[RunBatchResponse](t, resp.Body)
	resp.Body.Close()
	if len(br.Results) != 2 {
		t.Fatalf("%d batch results, want 2", len(br.Results))
	}
	for _, res := range br.Results {
		if res.Value != 385 || res.Error != "" {
			t.Errorf("batch result %+v", res)
		}
		if !strings.Contains(res.Deployment, ".") {
			t.Errorf("batch result ID %q not namespaced", res.Deployment)
		}
	}

	// Listings merge the fleet.
	resp, err := http.Get(front.URL + "/v1/deployments")
	if err != nil {
		t.Fatal(err)
	}
	list := decodeJSON[DeployResponse](t, resp.Body)
	resp.Body.Close()
	if len(list.Deployments) != 2 {
		t.Errorf("merged listing has %d deployments, want 2", len(list.Deployments))
	}
	resp, err = http.Get(front.URL + "/v1/modules")
	if err != nil {
		t.Fatal(err)
	}
	mods := decodeJSON[struct {
		Modules []ModuleInfo `json:"modules"`
	}](t, resp.Body)
	resp.Body.Close()
	if len(mods.Modules) != 1 || mods.Modules[0].ID != id {
		t.Errorf("merged module listing = %+v, want just %s (replicated uploads dedup)", mods.Modules, id)
	}

	// Aggregated stats name both backends and the router's own counters.
	resp, err = http.Get(front.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	st := decodeJSON[RouterStatsResponse](t, resp.Body)
	resp.Body.Close()
	if len(st.Backends) != 2 {
		t.Errorf("stats cover %d backends, want 2", len(st.Backends))
	}
	if len(st.Router.Backends) != 2 || st.Router.Fanouts < 2 {
		t.Errorf("router stats = %+v", st.Router)
	}
}

func TestRouterUploadReplication(t *testing.T) {
	_, front, backends := newTestFleet(t, 3, Config{})
	id := upload(t, front, encodeModule(t, sumsqSource))

	// The module must be deployable directly on every backend: the ring may
	// send overflow there under bounded load.
	for i, b := range backends {
		resp := postJSON(t, b.URL+"/v1/deploy", DeployRequest{Module: id, Targets: []string{"mcu"}})
		if resp.StatusCode != http.StatusCreated {
			t.Errorf("backend %d cannot deploy the replicated module: status %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
}

func TestRouterRetriesNextReplicaOnBackendDeath(t *testing.T) {
	// BreakerFailures:1 restores the old hair-trigger ejection this test
	// pins; hysteresis itself is covered by TestRouterBreakerHysteresis.
	rt, front, backends := newTestFleetCfg(t, 2, Config{}, RouterConfig{BreakerFailures: 1})
	id := upload(t, front, encodeModule(t, sumsqSource))

	// Kill the module's ring owner; deploys must fail over clockwise.
	owner := rt.ring.owner(id)
	backends[owner].CloseClientConnections()
	backends[owner].Close()

	resp := postJSON(t, front.URL+"/v1/deploy", DeployRequest{Module: id, Targets: []string{"x86-sse"}})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("failover deploy: status %d", resp.StatusCode)
	}
	dr := decodeJSON[DeployResponse](t, resp.Body)
	resp.Body.Close()
	survivor := 1 - owner
	if want := fmt.Sprintf("b%d.", survivor); !strings.HasPrefix(dr.Deployments[0].ID, want) {
		t.Errorf("failover landed on %s, want prefix %s", dr.Deployments[0].ID, want)
	}
	st := rt.Stats()
	if st.Retries == 0 {
		t.Error("no retry was counted for the failover")
	}
	if st.Backends[owner].Healthy {
		t.Error("dead backend still marked healthy")
	}

	// The router's health endpoint still reports serviceable.
	hresp, err := http.Get(front.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if hresp.StatusCode != http.StatusOK {
		t.Errorf("router healthz = %d with one live backend", hresp.StatusCode)
	}
	hresp.Body.Close()
}

func TestRouterRunUnknownNamespace(t *testing.T) {
	_, front, _ := newTestFleet(t, 2, Config{})
	for _, id := range []string{"d-000001", "b9.d-000001", "nope.d-000001"} {
		resp := postJSON(t, front.URL+"/v1/deployments/"+id+"/run", RunRequest{Entry: "sumsq", Args: []string{"1"}})
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("run %q: status %d, want 404", id, resp.StatusCode)
		}
		resp.Body.Close()
	}
}

func TestRouterConcurrentTraffic(t *testing.T) {
	_, front, _ := newTestFleet(t, 3, Config{})
	id := upload(t, front, encodeModule(t, sumsqSource))
	resp := postJSON(t, front.URL+"/v1/deploy", DeployRequest{Module: id, Targets: []string{"x86-sse"}, Replicas: 2})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("deploy: status %d", resp.StatusCode)
	}
	dr := decodeJSON[DeployResponse](t, resp.Body)
	resp.Body.Close()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				dep := dr.Deployments[(g+i)%len(dr.Deployments)]
				resp := postJSON(t, front.URL+"/v1/deployments/"+dep.ID+"/run",
					RunRequest{Entry: "sumsq", Args: []string{"20"}})
				if resp.StatusCode != http.StatusOK {
					t.Errorf("goroutine %d: run status %d", g, resp.StatusCode)
				}
				resp.Body.Close()
			}
		}(g)
	}
	wg.Wait()
}

// TestRingBalance: 64 vnodes per backend must split the keyspace within a
// reasonable band (no backend owning more than ~2× its fair share).
func TestRingBalance(t *testing.T) {
	const backends, keys = 4, 4000
	r := newHashRing(backends)
	counts := make([]int, backends)
	for i := 0; i < keys; i++ {
		counts[r.owner(fmt.Sprintf("module-%d", i))]++
	}
	fair := keys / backends
	for b, c := range counts {
		if c < fair/2 || c > fair*2 {
			t.Errorf("backend %d owns %d of %d keys (fair share %d)", b, c, keys, fair)
		}
	}
}

// TestRingConsistency is the acceptance property: growing the fleet from N
// to N+1 backends remaps only about 1/(N+1) of the module hashes.
func TestRingConsistency(t *testing.T) {
	const keys = 10000
	for _, n := range []int{2, 4, 8} {
		before := newHashRing(n)
		after := newHashRing(n + 1)
		moved := 0
		for i := 0; i < keys; i++ {
			key := fmt.Sprintf("%064x", i) // shaped like module hashes
			if before.owner(key) != after.owner(key) {
				moved++
			}
		}
		want := float64(keys) / float64(n+1)
		// Allow generous slack: vnode placement is random-ish, but moving
		// 2× the ideal fraction (or keys moving between surviving backends)
		// would mean the hash is not consistent.
		if got := float64(moved); got > 2*want {
			t.Errorf("%d→%d backends moved %d/%d keys, want ≈%.0f", n, n+1, moved, keys, want)
		}
		// Every moved key must have moved TO the new backend — keys never
		// shuffle between surviving replicas.
		for i := 0; i < keys; i++ {
			key := fmt.Sprintf("%064x", i)
			if b, a := before.owner(key), after.owner(key); b != a && a != n {
				t.Fatalf("key %d moved %d→%d, not to the new backend %d", i, b, a, n)
			}
		}
	}
}

// TestRingBoundedLoad: an overloaded owner sheds traffic clockwise; an idle
// ring always uses the pure owner.
func TestRingBoundedLoad(t *testing.T) {
	r := newHashRing(3)
	healthy := []bool{true, true, true}
	key := "some-module-hash"
	owner := r.owner(key)

	if got := r.pick(key, healthy, []int64{0, 0, 0}, 1.25); got != owner {
		t.Errorf("idle pick = %d, want owner %d", got, owner)
	}

	// Pile load onto the owner: the pick must move to the next replica on
	// the walk, and that replica must be deterministic.
	load := []int64{0, 0, 0}
	load[owner] = 100
	next := r.walk(key)[1]
	for i := 0; i < 5; i++ {
		if got := r.pick(key, healthy, load, 1.25); got != next {
			t.Fatalf("overloaded pick = %d, want next replica %d", got, next)
		}
	}

	// Unhealthy owner is skipped even when idle.
	healthy[owner] = false
	if got := r.pick(key, healthy, []int64{0, 0, 0}, 1.25); got == owner {
		t.Error("pick chose an unhealthy owner")
	}
	// No healthy backend → -1.
	if got := r.pick(key, []bool{false, false, false}, []int64{0, 0, 0}, 1.25); got != -1 {
		t.Errorf("pick with dead fleet = %d, want -1", got)
	}
}
