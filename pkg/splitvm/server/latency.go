package server

import (
	"net/http"
	"sort"
	"sync"
	"time"
)

// maxLatencySamples bounds the per-route sample window. Percentiles are
// computed over the most recent window rather than the full history so the
// recorder's memory stays constant and the numbers track current behavior
// (a warm cache shows up in p50 even after a cold start inflated the early
// samples).
const maxLatencySamples = 1024

// latencyRecorder accumulates request durations for one route: total count
// and sum forever, plus a ring of recent samples for percentiles.
type latencyRecorder struct {
	mu      sync.Mutex
	count   int64
	sum     time.Duration
	samples []time.Duration // ring buffer, len <= maxLatencySamples
	next    int             // ring write cursor once the buffer is full
}

func (l *latencyRecorder) observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	l.mu.Lock()
	l.count++
	l.sum += d
	if len(l.samples) < maxLatencySamples {
		l.samples = append(l.samples, d)
	} else {
		l.samples[l.next] = d
		l.next = (l.next + 1) % maxLatencySamples
	}
	l.mu.Unlock()
}

// LatencySummary reports one route's request-latency distribution: lifetime
// count and mean, percentiles over the most recent window (up to 1024
// samples). Durations are nanoseconds.
type LatencySummary struct {
	Count     int64 `json:"count"`
	MeanNanos int64 `json:"mean_nanos"`
	P50Nanos  int64 `json:"p50_nanos"`
	P95Nanos  int64 `json:"p95_nanos"`
	P99Nanos  int64 `json:"p99_nanos"`
	MaxNanos  int64 `json:"max_nanos"`
}

// percentile returns the pth percentile (0 < p <= 100) of a sorted slice
// using the nearest-rank method.
func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := (len(sorted)*p + 99) / 100
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

func (l *latencyRecorder) summary() LatencySummary {
	l.mu.Lock()
	s := LatencySummary{Count: l.count}
	if l.count > 0 {
		s.MeanNanos = int64(l.sum) / l.count
	}
	win := append([]time.Duration(nil), l.samples...)
	l.mu.Unlock()
	if len(win) == 0 {
		return s
	}
	sort.Slice(win, func(i, j int) bool { return win[i] < win[j] })
	s.P50Nanos = int64(percentile(win, 50))
	s.P95Nanos = int64(percentile(win, 95))
	s.P99Nanos = int64(percentile(win, 99))
	s.MaxNanos = int64(win[len(win)-1])
	return s
}

// routeLatencies is the fixed set of instrumented routes.
type routeLatencies struct {
	upload   latencyRecorder
	deploy   latencyRecorder
	run      latencyRecorder
	runBatch latencyRecorder
}

func (r *routeLatencies) summaries() map[string]LatencySummary {
	out := make(map[string]LatencySummary, 4)
	for name, rec := range map[string]*latencyRecorder{
		"upload":    &r.upload,
		"deploy":    &r.deploy,
		"run":       &r.run,
		"run_batch": &r.runBatch,
	} {
		if s := rec.summary(); s.Count > 0 {
			out[name] = s
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// timed wraps a handler to record its wall-clock latency.
func timed(rec *latencyRecorder, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		h(w, r)
		rec.observe(time.Since(start))
	}
}
