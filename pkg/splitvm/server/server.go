// Package server exposes a shared splitvm.Engine over HTTP: the batch
// deploy service of the split-compilation model. One long-lived process
// holds one engine, so verification happens once per uploaded module and
// JIT compilation once per (module, target, options) key; every further
// deployment anywhere in the fleet of simulated devices is a code-cache hit
// that only pays for a fresh machine.
//
// The API (all bodies JSON unless noted):
//
//	POST /v1/modules                   upload an encoded module (raw bytes) → id
//	GET  /v1/modules                   list uploaded modules
//	POST /v1/deploy                    batch deploy: one module × many targets
//	GET  /v1/deployments               list live deployments
//	POST /v1/deployments/{id}/run      invoke an entry point on a deployment
//	POST /v1/run-batch                 invoke one entry point across many deployments
//	GET  /v1/deployments/{id}/profile  export a tiered deployment's profile
//	GET  /v1/stats                     cache, pool, registry and tier counters
//	GET  /healthz                      liveness
//
// Deploy requests fan out to per-target worker pools with bounded queues;
// when a target's queue is full the whole batch is rejected with 429 and a
// Retry-After hint instead of queueing unboundedly — backpressure is the
// contract that keeps one slow target from absorbing the server's memory.
//
// With Config.DeployTTL set, an idle sweeper evicts deployments that have
// not run anything for that long (the other half of the memory contract:
// bounded queues stop unbounded inflow, the TTL stops unbounded
// accumulation). Eviction drops only the machine; the JIT image stays
// cached, so re-deploying after eviction is a cache hit.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/faultinject"
	"repro/internal/journal"
	"repro/internal/target"
	"repro/pkg/splitvm"
)

// Config parameterizes a Server. The zero value gets sensible defaults.
type Config struct {
	// WorkersPerTarget is the number of concurrent deployments each target's
	// pool executes (default 4).
	WorkersPerTarget int
	// QueueDepth bounds each target's pending-deployment queue (default 64).
	// A batch that cannot enqueue every job immediately is rejected with 429.
	QueueDepth int
	// RetryAfter is the hint sent with 429 responses (default 1s).
	RetryAfter time.Duration
	// MaxModuleBytes caps uploaded module size (default 4 MiB).
	MaxModuleBytes int64
	// MaxBatchJobs caps targets × replicas of one deploy request (default
	// 256) so a single request cannot reserve every queue slot of the server.
	MaxBatchJobs int
	// DeployTTL evicts deployments that have not run anything for this
	// long (0 — the default — keeps live machines forever, the historical
	// behavior). Eviction frees the machine's simulated memory; the JIT
	// image stays in the engine's code cache, so re-deploying an evicted
	// module is a cheap cache hit. Evictions are counted in /v1/stats.
	DeployTTL time.Duration
	// DeploySweepInterval is how often the idle sweeper scans (default
	// DeployTTL/4, at least 100ms). Only meaningful with DeployTTL > 0.
	DeploySweepInterval time.Duration
	// MaxDeploymentsPerModule caps the live deployments of any single module
	// (0 — the default — is unlimited). A batch that would push a module over
	// the cap is rejected whole with 429, like queue saturation; evicted or
	// swept deployments free their slots.
	MaxDeploymentsPerModule int
	// MaxDeploymentsPerTenant caps the live deployments attributed to one
	// tenant (0 — the default — is unlimited). The tenant is the X-Tenant
	// request header; requests without one share the "default" tenant, so a
	// single-tenant installation behaves like a global cap.
	MaxDeploymentsPerTenant int
	// MaxInflightPerTenant caps the run and run-batch requests one tenant may
	// have in flight (0 — the default — is unlimited). A request over the cap
	// is shed with 429, error class "resource_exhausted" and retryable true:
	// the server is overloaded, not broken, so routers retry or back off
	// instead of failing over. Requests that carry a deadline are shed
	// immediately when the tenant is saturated; deadline-less requests may
	// queue behind at most MaxInflightPerTenant waiters.
	MaxInflightPerTenant int
	// JournalPath, when set, makes the server keep a crash-safe deployment
	// journal at that file: every upload, deploy and eviction is appended,
	// and New replays the file so a restarted (even SIGKILLed) server
	// recovers its module and deployment registries — warm, with zero
	// compilations, when the engine also has its disk cache. An unusable
	// journal does not fail New; check JournalErr for callers that require
	// durability.
	JournalPath string
}

func (c *Config) defaults() {
	if c.WorkersPerTarget <= 0 {
		c.WorkersPerTarget = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxModuleBytes <= 0 {
		c.MaxModuleBytes = 4 << 20
	}
	if c.MaxBatchJobs <= 0 {
		c.MaxBatchJobs = 256
	}
	if c.DeployTTL > 0 && c.DeploySweepInterval <= 0 {
		c.DeploySweepInterval = c.DeployTTL / 4
		if c.DeploySweepInterval < 100*time.Millisecond {
			c.DeploySweepInterval = 100 * time.Millisecond
		}
	}
}

// Server is the HTTP façade over one shared engine. Create it with New,
// serve it like any http.Handler, and Close it to stop the worker pools.
type Server struct {
	eng *splitvm.Engine
	cfg Config
	mux *http.ServeMux

	baseCtx context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup

	// adm sheds run requests over the per-tenant in-flight cap (admits
	// everything with Config.MaxInflightPerTenant unset).
	adm *admission

	mu          sync.Mutex
	closed      bool
	modules     map[string]*splitvm.Module
	moduleOrder []string
	deployments map[string]*liveDeployment
	deployOrder []string
	pools       map[target.Arch]*pool
	nextDep     int64
	rejected    int64
	evicted     int64
	// Quota accounting: live (registered) plus in-flight (reserved) deploy
	// counts per module id and per tenant. Reservations are taken before the
	// pools see a batch and converted into live counts at registration, so
	// two racing batches cannot both squeeze under a cap.
	quotaRejected int64
	byModule      map[string]int
	byTenant      map[string]int

	lat routeLatencies

	// Deployment journal (nil without Config.JournalPath). The replay
	// counters are fixed at New; journalAppendErrs is guarded by mu.
	jnl                 *journal.Journal
	journalErr          error
	journalAppendErrs   int64
	moduleBytes         map[string][]byte // raw uploads, retained for compaction
	replayedModules     int
	replayedDeployments int
	replayFailed        int

	// gateDeploy, when non-nil, is called by every pool worker before it
	// deploys a job — a test hook to hold workers and saturate the queues
	// deterministically. Set it before the first request is served.
	gateDeploy func()
}

// liveDeployment is one instantiated machine. Machines own mutable state
// (memory, statistics), so the mutex serializes runs per deployment.
type liveDeployment struct {
	id     string
	module string
	tenant string
	arch   target.Arch
	// lastUsed is when the deployment was created or last asked to run,
	// and running counts in-flight invocations; both are read by the idle
	// sweeper. Guarded by Server.mu (not the run mutex: the sweeper must
	// never wait behind a long-running invocation).
	lastUsed time.Time
	running  int

	// The deploy options the machine was created with, retained so the
	// journal can re-create it verbatim on replay and compaction.
	regAlloc          string
	forceScalarize    bool
	lazy              bool
	tiering           bool
	promoteCalls      int64
	profile           []byte
	memLimit          int64
	runDeadlineMillis int64

	mu  sync.Mutex
	dep *splitvm.Deployment
}

// New wraps an engine in a batch deploy server. The engine may be shared
// with other (non-HTTP) users; the server only adds state of its own for
// the module and deployment registries and the worker pools.
func New(eng *splitvm.Engine, cfg Config) *Server {
	cfg.defaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		eng:         eng,
		cfg:         cfg,
		baseCtx:     ctx,
		cancel:      cancel,
		modules:     make(map[string]*splitvm.Module),
		deployments: make(map[string]*liveDeployment),
		pools:       make(map[target.Arch]*pool),
		byModule:    make(map[string]int),
		byTenant:    make(map[string]int),
		adm:         newAdmission(cfg.MaxInflightPerTenant),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/modules", timed(&s.lat.upload, s.handleUpload))
	mux.HandleFunc("GET /v1/modules", s.handleListModules)
	mux.HandleFunc("POST /v1/deploy", timed(&s.lat.deploy, s.handleDeploy))
	mux.HandleFunc("GET /v1/deployments", s.handleListDeployments)
	mux.HandleFunc("POST /v1/deployments/{id}/run", timed(&s.lat.run, s.handleRun))
	mux.HandleFunc("POST /v1/run-batch", timed(&s.lat.runBatch, s.handleRunBatch))
	mux.HandleFunc("GET /v1/deployments/{id}/profile", s.handleProfile)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	s.mux = mux
	if cfg.JournalPath != "" {
		s.openJournal(cfg.JournalPath)
	}
	if cfg.DeployTTL > 0 {
		s.wg.Add(1)
		go s.sweepLoop()
	}
	return s
}

// sweepLoop periodically evicts idle deployments until the server closes.
func (s *Server) sweepLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.DeploySweepInterval)
	defer t.Stop()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case <-t.C:
			s.evictIdle(time.Now().Add(-s.cfg.DeployTTL))
		}
	}
}

// evictIdle drops every deployment whose last use predates the cutoff and
// returns how many it removed. An eviction only forgets the machine (its
// simulated memory is garbage); the module and the cached JIT image are
// untouched, so a client that raced the sweeper simply re-deploys and gets a
// code-cache hit. In-flight runs hold their own reference and finish
// normally; their result just belongs to a machine that is no longer listed.
func (s *Server) evictIdle(cutoff time.Time) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	removed := 0
	keep := s.deployOrder[:0]
	for _, id := range s.deployOrder {
		ld := s.deployments[id]
		if ld.running == 0 && ld.lastUsed.Before(cutoff) {
			delete(s.deployments, id)
			s.byModule[ld.module]--
			s.byTenant[ld.tenant]--
			s.appendJournalJSON(journalOpEvict, journalEvictRecord{ID: id})
			removed++
			continue
		}
		keep = append(keep, id)
	}
	s.deployOrder = keep
	s.evicted += int64(removed)
	return removed
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Engine returns the wrapped engine (shared; e.g. for out-of-band stats).
func (s *Server) Engine() *splitvm.Engine { return s.eng }

// Close stops the worker pools and waits for in-flight deployments to
// finish. Requests arriving after Close are rejected with 503. Close is the
// second half of a graceful shutdown: first drain the HTTP listener
// (http.Server.Shutdown), then Close the deploy pools.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cancel()
	s.wg.Wait()
	if s.jnl != nil {
		_ = s.jnl.Close()
	}
}

// runContext derives the context one simulated invocation runs under: it
// follows the incoming request — a client that disconnects cancels its
// simulation — and additionally the server's base context, so Close
// force-cancels every in-flight run during a bounded shutdown.
func (s *Server) runContext(r *http.Request) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(r.Context())
	stop := context.AfterFunc(s.baseCtx, cancel)
	return ctx, func() { stop(); cancel() }
}

// Error classes for run failures, machine-readable so routers and clients
// can decide what to retry without parsing error prose.
const (
	errClassNotFound          = "not_found"
	errClassBadRequest        = "bad_request"
	errClassExecution         = "execution"
	errClassCancelled         = "cancelled"
	errClassUnavailable       = "unavailable"
	errClassResourceExhausted = "resource_exhausted"
)

// classifyRunError maps a simulation error to (class, retryable). A
// cancelled run is retryable — the machine is fine, the caller went away
// or the server was shutting down; an execution trap is not — retrying the
// same inputs traps again. A governed run that exceeded one of its limits
// (instruction budget, guest memory, run deadline) is resource_exhausted
// and not retryable on the same machine with the same limits: the breach is
// a deterministic property of the module and its governor, not a transient
// fault — which is also why routers must not fail it over.
func classifyRunError(err error) (string, bool) {
	var re *splitvm.ResourceError
	if errors.As(err, &re) {
		return errClassResourceExhausted, false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return errClassCancelled, true
	}
	return errClassExecution, false
}

// errorBody is the uniform error payload. Class and Retryable are set on
// run failures (see the errClass constants); other routes leave them empty.
type errorBody struct {
	Error     string `json:"error"`
	Class     string `json:"error_class,omitempty"`
	Retryable bool   `json:"retryable,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is already out; nothing to recover
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// admit applies the per-tenant in-flight cap to one run-route request. On
// shed it writes the full 429 response — resource_exhausted, retryable,
// with a Retry-After hint — and returns ok false; on admission the caller
// must invoke release exactly once when the request's work is done.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) (release func(), ok bool) {
	tenant := tenantOf(r)
	release, ok = s.adm.acquire(r.Context(), tenant)
	if !ok {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int(s.cfg.RetryAfter.Seconds()+0.999)))
		writeJSON(w, http.StatusTooManyRequests, errorBody{
			Error:     fmt.Sprintf("tenant %q is at its in-flight run cap (%d); retry later", tenant, s.cfg.MaxInflightPerTenant),
			Class:     errClassResourceExhausted,
			Retryable: true,
		})
		return nil, false
	}
	return release, true
}

// ModuleInfo describes one uploaded module.
type ModuleInfo struct {
	// ID is the hex SHA-256 of the encoded byte stream; uploads are
	// idempotent by content.
	ID              string   `json:"id"`
	Name            string   `json:"name"`
	Methods         []string `json:"methods"`
	EncodedBytes    int      `json:"encoded_bytes"`
	AnnotationBytes int      `json:"annotation_bytes"`
}

func moduleInfo(id string, m *splitvm.Module) ModuleInfo {
	st := m.Stats()
	return ModuleInfo{
		ID:              id,
		Name:            m.Name(),
		Methods:         m.Methods(),
		EncodedBytes:    st.EncodedBytes,
		AnnotationBytes: st.AnnotationBytes,
	}
}

// handleUpload ingests an encoded module: decode + verify once, then the
// module is deployable any number of times. The body is the raw byte stream
// produced by the offline compiler (svc -o …).
func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.MaxModuleBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	if int64(len(data)) > s.cfg.MaxModuleBytes {
		writeError(w, http.StatusRequestEntityTooLarge, "module exceeds %d bytes", s.cfg.MaxModuleBytes)
		return
	}
	if len(data) == 0 {
		writeError(w, http.StatusBadRequest, "empty module body")
		return
	}
	m, err := s.eng.Load(data)
	if err != nil {
		writeError(w, http.StatusBadRequest, "loading module: %v", err)
		return
	}
	id := m.Hash()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	if _, ok := s.modules[id]; !ok {
		s.modules[id] = m
		s.moduleOrder = append(s.moduleOrder, id)
		if s.jnl != nil {
			s.moduleBytes[id] = append([]byte(nil), data...)
			s.appendJournal(journalOpModule, data)
		}
	}
	m = s.modules[id]
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, moduleInfo(id, m))
}

func (s *Server) handleListModules(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]ModuleInfo, 0, len(s.moduleOrder))
	for _, id := range s.moduleOrder {
		out = append(out, moduleInfo(id, s.modules[id]))
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"modules": out})
}

// DeployRequest is one batch: deploy a module on every listed target,
// replicas machines each.
type DeployRequest struct {
	// Module is the id returned by the upload endpoint.
	Module string `json:"module"`
	// Targets are registry names (x86-sse, ultrasparc, powerpc, spu, mcu,
	// plus anything added with target.Register).
	Targets []string `json:"targets"`
	// Replicas is the number of machines per target (default 1).
	Replicas int `json:"replicas,omitempty"`
	// RegAlloc selects the JIT register allocator: "split" (default),
	// "online" or "optimal".
	RegAlloc string `json:"reg_alloc,omitempty"`
	// ForceScalarize makes the JIT ignore the target's SIMD unit.
	ForceScalarize bool `json:"force_scalarize,omitempty"`
	// Lazy deploys with on-demand compilation: the machines install
	// per-method stubs and JIT each method on its first call (once per
	// image, shared by every replica; once fleet-wide with a shared disk
	// cache). Results and simulated cycles are identical to an eager
	// deployment — only when compile time is paid changes.
	Lazy bool `json:"lazy,omitempty"`
	// Tiering enables runtime profiling and tier-2 promotion on the
	// deployed machines (per machine; the cached JIT image is shared with
	// untiered deployments because tier 2 never changes simulated
	// behavior).
	Tiering bool `json:"tiering,omitempty"`
	// PromoteCalls overrides the tier-2 promotion threshold in calls
	// (implies tiering; negative profiles without promoting).
	PromoteCalls int64 `json:"promote_calls,omitempty"`
	// Profile is an execution profile annotation value (as exported by the
	// profile endpoint; base64 in JSON) to warm the deployed machines with
	// — implies tiering. A profile this server cannot negotiate (future
	// schema, malformed) degrades to deploying without one, like every
	// annotation: it is surfaced per deployment, never an error.
	Profile []byte `json:"profile,omitempty"`
	// MemLimit bounds the guest memory of each deployed machine in bytes
	// (0 = ungoverned). A run that would breach it fails with error class
	// resource_exhausted; the machine and its cached image are unaffected.
	MemLimit int64 `json:"mem_limit,omitempty"`
	// RunDeadlineMillis bounds the wall-clock time of each run on the
	// deployed machines, in milliseconds (0 = unbounded). A breach fails the
	// run with error class resource_exhausted.
	RunDeadlineMillis int64 `json:"run_deadline_ms,omitempty"`
}

// DeploymentInfo describes one live deployment.
type DeploymentInfo struct {
	ID     string `json:"id"`
	Module string `json:"module"`
	Target string `json:"target"`
	// FromCache reports whether the native code came from the engine's code
	// cache rather than a fresh JIT compilation.
	FromCache bool `json:"from_cache"`
	// JITSteps approximates the online compilation work this deployment paid.
	JITSteps int64 `json:"jit_steps"`
	// CompileNanos is the wall-clock time the JIT spent producing this
	// deployment's native code (the original compilation's cost when
	// FromCache is true — a cache hit pays none of it again).
	CompileNanos    int64 `json:"compile_nanos"`
	NativeCodeBytes int   `json:"native_code_bytes"`
	// AnnotationFallbacks counts the annotation sections of this
	// deployment's image that could not be consumed (malformed, from the
	// future, or below the configured minimum version) and degraded to
	// online-only compilation.
	AnnotationFallbacks int `json:"annotation_fallbacks"`
	// Tiering reports whether the deployment profiles and promotes.
	Tiering bool `json:"tiering,omitempty"`
	// ProfileFallback is set when the deploy request carried a warm profile
	// this server could not negotiate: the deployment runs (tiered, if
	// requested) without it.
	ProfileFallback string `json:"profile_fallback,omitempty"`
	// Lazy reports whether the deployment compiles methods on first call;
	// MethodsCompiled/MethodsTotal are its per-method progress at response
	// time (equal on eager deployments, MethodsCompiled 0 on a fresh lazy
	// one).
	Lazy            bool `json:"lazy,omitempty"`
	MethodsCompiled int  `json:"methods_compiled"`
	MethodsTotal    int  `json:"methods_total"`
	// FromDisk reports that the native code was materialized from the
	// engine's persistent cache layer (a warm restart or a replica sharing
	// the cache volume); every FromDisk deployment is also FromCache.
	FromDisk bool `json:"from_disk,omitempty"`
	// MemLimit and RunDeadlineMillis echo the deployment's resource governor
	// (0 = ungoverned / unbounded; see DeployRequest).
	MemLimit          int64 `json:"mem_limit,omitempty"`
	RunDeadlineMillis int64 `json:"run_deadline_ms,omitempty"`
}

// DeployResponse lists the deployments a batch created, in target-major,
// replica-minor order.
type DeployResponse struct {
	Deployments []DeploymentInfo `json:"deployments"`
	// DiskHits counts how many of the batch's deployments were served from
	// the engine's persistent cache layer instead of being JIT-compiled
	// (always zero without a disk cache).
	DiskHits int `json:"disk_hits"`
}

// tenantOf attributes a request to a tenant: the X-Tenant header, or the
// shared "default" tenant when the client sends none.
func tenantOf(r *http.Request) string {
	if t := r.Header.Get("X-Tenant"); t != "" {
		return t
	}
	return "default"
}

// reserveQuotaLocked admits n more deployments for (module, tenant) against
// the configured caps, counting both live machines and reservations other
// in-flight batches already hold. Caller holds s.mu.
func (s *Server) reserveQuotaLocked(module, tenant string, n int) error {
	if max := s.cfg.MaxDeploymentsPerModule; max > 0 && s.byModule[module]+n > max {
		return fmt.Errorf("module %s would exceed its deployment quota (%d live or pending, cap %d)",
			module, s.byModule[module], max)
	}
	if max := s.cfg.MaxDeploymentsPerTenant; max > 0 && s.byTenant[tenant]+n > max {
		return fmt.Errorf("tenant %q would exceed its deployment quota (%d live or pending, cap %d)",
			tenant, s.byTenant[tenant], max)
	}
	s.byModule[module] += n
	s.byTenant[tenant] += n
	return nil
}

// releaseQuota returns n reserved slots (a batch that failed before
// registration).
func (s *Server) releaseQuota(module, tenant string, n int) {
	s.mu.Lock()
	s.byModule[module] -= n
	s.byTenant[tenant] -= n
	s.mu.Unlock()
}

func regAllocMode(name string) (splitvm.RegAllocMode, error) {
	switch name {
	case "", "split":
		return splitvm.RegAllocSplit, nil
	case "online":
		return splitvm.RegAllocOnline, nil
	case "optimal":
		return splitvm.RegAllocOptimal, nil
	default:
		return 0, fmt.Errorf("unknown reg_alloc %q (want online, split or optimal)", name)
	}
}

// handleDeploy fans a batch out to the per-target pools and collects the
// machines. Saturation anywhere rejects the whole batch: partial deployment
// would leave the client guessing which replicas exist.
func (s *Server) handleDeploy(w http.ResponseWriter, r *http.Request) {
	if f := faultinject.At("server.deploy"); f != nil {
		if err := f.Apply(); err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
	}
	var req DeployRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if req.Replicas == 0 {
		req.Replicas = 1
	}
	if req.Replicas < 0 {
		writeError(w, http.StatusBadRequest, "replicas must be positive")
		return
	}
	if len(req.Targets) == 0 {
		writeError(w, http.StatusBadRequest, "no targets listed")
		return
	}
	if jobs := len(req.Targets) * req.Replicas; jobs > s.cfg.MaxBatchJobs {
		writeError(w, http.StatusBadRequest, "batch of %d deployments exceeds the limit of %d", jobs, s.cfg.MaxBatchJobs)
		return
	}
	mode, err := regAllocMode(req.RegAlloc)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.MemLimit < 0 {
		writeError(w, http.StatusBadRequest, "mem_limit must be non-negative")
		return
	}
	if req.RunDeadlineMillis < 0 {
		writeError(w, http.StatusBadRequest, "run_deadline_ms must be non-negative")
		return
	}
	archs := make([]target.Arch, len(req.Targets))
	for i, name := range req.Targets {
		a := target.Arch(name)
		if _, err := target.Lookup(a); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		archs[i] = a
	}

	tenant := tenantOf(r)
	batchSize := len(req.Targets) * req.Replicas
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	m, ok := s.modules[req.Module]
	if !ok {
		s.mu.Unlock()
		writeError(w, http.StatusNotFound, "unknown module %q (upload it first)", req.Module)
		return
	}
	// Admit the whole batch against the quotas before any pool sees it: a
	// reservation taken here is either converted into live deployments at
	// registration or released on any earlier exit.
	if err := s.reserveQuotaLocked(req.Module, tenant, batchSize); err != nil {
		s.quotaRejected++
		s.mu.Unlock()
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int(s.cfg.RetryAfter.Seconds()+0.999)))
		writeError(w, http.StatusTooManyRequests, "%v", err)
		return
	}
	s.mu.Unlock()
	reserved := true
	defer func() {
		if reserved {
			s.releaseQuota(req.Module, tenant, batchSize)
		}
	}()

	opts := []splitvm.DeployOption{
		splitvm.WithRegAllocMode(mode),
		splitvm.WithForceScalarize(req.ForceScalarize),
		splitvm.WithLazyCompile(req.Lazy),
	}
	tiering := req.Tiering || req.PromoteCalls != 0 || len(req.Profile) > 0
	if tiering {
		opts = append(opts, splitvm.WithTiering(true))
	}
	if req.MemLimit > 0 {
		opts = append(opts, splitvm.WithMemLimit(req.MemLimit))
	}
	if req.RunDeadlineMillis > 0 {
		opts = append(opts, splitvm.WithRunDeadline(time.Duration(req.RunDeadlineMillis)*time.Millisecond))
	}
	if req.PromoteCalls != 0 {
		opts = append(opts, splitvm.WithPromoteCalls(req.PromoteCalls))
	}
	profileFallback := ""
	if len(req.Profile) > 0 {
		// Negotiate-or-fallback, like every annotation: a profile from a
		// newer toolchain (or a corrupt one) deploys without warm counters
		// instead of failing the batch.
		p, err := splitvm.DecodeProfile(req.Profile)
		if err != nil {
			profileFallback = err.Error()
		} else {
			opts = append(opts, splitvm.WithProfile(p))
		}
	}

	// Enqueue every job before waiting on any: the pools work concurrently
	// across targets, and a full queue is detected up front.
	type pending struct {
		arch target.Arch
		job  *deployJob
	}
	var queued []pending
	for _, a := range archs {
		p := s.poolFor(a)
		for i := 0; i < req.Replicas; i++ {
			j := &deployJob{
				ctx:  r.Context(),
				m:    m,
				opts: append([]splitvm.DeployOption{splitvm.WithTarget(a)}, opts...),
				res:  make(chan deployResult, 1),
			}
			if !p.trySubmit(j) {
				// Backpressure: the batch does not fit. Jobs already queued
				// run to completion against the request context (now about
				// to be cancelled) and their results are dropped; nothing
				// was registered yet.
				s.mu.Lock()
				s.rejected++
				s.mu.Unlock()
				w.Header().Set("Retry-After", fmt.Sprintf("%d", int(s.cfg.RetryAfter.Seconds()+0.999)))
				writeError(w, http.StatusTooManyRequests,
					"deploy queue for target %q is full (depth %d); retry later", a, s.cfg.QueueDepth)
				return
			}
			queued = append(queued, pending{arch: a, job: j})
		}
	}

	infos := make([]DeploymentInfo, 0, len(queued))
	diskHits := 0
	var deps []*liveDeployment
	for _, pq := range queued {
		var res deployResult
		select {
		case res = <-pq.job.res:
		case <-r.Context().Done():
			writeError(w, http.StatusServiceUnavailable, "request cancelled: %v", r.Context().Err())
			return
		case <-s.baseCtx.Done():
			writeError(w, http.StatusServiceUnavailable, "server is shutting down")
			return
		}
		if res.err != nil {
			writeError(w, http.StatusInternalServerError, "deploying on %s: %v", pq.arch, res.err)
			return
		}
		ld := &liveDeployment{
			module:            req.Module,
			tenant:            tenant,
			arch:              pq.arch,
			dep:               res.dep,
			regAlloc:          req.RegAlloc,
			forceScalarize:    req.ForceScalarize,
			lazy:              req.Lazy,
			tiering:           req.Tiering,
			promoteCalls:      req.PromoteCalls,
			profile:           req.Profile,
			memLimit:          req.MemLimit,
			runDeadlineMillis: req.RunDeadlineMillis,
		}
		deps = append(deps, ld)
		if res.dep.FromDisk() {
			diskHits++
		}
		compiled, total := res.dep.MethodCounts()
		infos = append(infos, DeploymentInfo{
			Module:              req.Module,
			Target:              string(pq.arch),
			FromCache:           res.dep.FromCache(),
			FromDisk:            res.dep.FromDisk(),
			JITSteps:            res.dep.JITSteps(),
			CompileNanos:        res.dep.CompileNanos(),
			NativeCodeBytes:     res.dep.NativeCodeBytes(),
			AnnotationFallbacks: res.dep.AnnotationFallbacks(),
			Tiering:             res.dep.TieringEnabled(),
			ProfileFallback:     profileFallback,
			Lazy:                res.dep.Lazy(),
			MethodsCompiled:     compiled,
			MethodsTotal:        total,
			MemLimit:            res.dep.MemLimit(),
			RunDeadlineMillis:   int64(res.dep.RunDeadline() / time.Millisecond),
		})
	}

	// Register the whole batch atomically, so clients never observe half a
	// batch in the deployments listing. The quota reservation converts into
	// the registered machines' live counts here.
	now := time.Now()
	s.mu.Lock()
	for i, ld := range deps {
		ld.lastUsed = now
		s.nextDep++
		ld.id = fmt.Sprintf("d-%06d", s.nextDep)
		infos[i].ID = ld.id
		s.deployments[ld.id] = ld
		s.deployOrder = append(s.deployOrder, ld.id)
		// Journal before the response: once the client has seen the id, a
		// crash and restart must still know the deployment. The compiled
		// image is already on disk (write-through in the engine), so replay
		// re-instantiates without compiling.
		s.appendJournalJSON(journalOpDeploy, deployRecordOf(ld))
	}
	reserved = false
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, DeployResponse{Deployments: infos, DiskHits: diskHits})
}

func (s *Server) handleListDeployments(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]DeploymentInfo, 0, len(s.deployOrder))
	for _, id := range s.deployOrder {
		ld := s.deployments[id]
		compiled, total := ld.dep.MethodCounts()
		out = append(out, DeploymentInfo{
			ID:                  id,
			Module:              ld.module,
			Target:              string(ld.arch),
			FromCache:           ld.dep.FromCache(),
			FromDisk:            ld.dep.FromDisk(),
			JITSteps:            ld.dep.JITSteps(),
			CompileNanos:        ld.dep.CompileNanos(),
			NativeCodeBytes:     ld.dep.NativeCodeBytes(),
			AnnotationFallbacks: ld.dep.AnnotationFallbacks(),
			Tiering:             ld.dep.TieringEnabled(),
			Lazy:                ld.dep.Lazy(),
			MethodsCompiled:     compiled,
			MethodsTotal:        total,
			MemLimit:            ld.dep.MemLimit(),
			RunDeadlineMillis:   int64(ld.dep.RunDeadline() / time.Millisecond),
		})
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, DeployResponse{Deployments: out})
}

// RunRequest invokes one entry point with textual scalar arguments (parsed
// against the method signature, like svrun's command line).
type RunRequest struct {
	Entry string   `json:"entry"`
	Args  []string `json:"args,omitempty"`
}

// RunResponse is the result of one invocation.
type RunResponse struct {
	// Value is the integer result; Float the floating-point one. IsFloat
	// says which is meaningful.
	Value   int64   `json:"value"`
	Float   float64 `json:"float"`
	IsFloat bool    `json:"is_float"`
	// Cycles is the simulated cost of this invocation alone.
	Cycles int64  `json:"cycles"`
	Target string `json:"target"`
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	release, admitted := s.admit(w, r)
	if !admitted {
		return
	}
	defer release()
	id := r.PathValue("id")
	s.mu.Lock()
	ld, ok := s.deployments[id]
	if ok {
		// A deployment being run is not idle, and an in-flight invocation
		// pins it against the sweeper (running is checked by evictIdle) —
		// a run that outlasts the TTL must not lose its machine mid-call.
		ld.lastUsed = time.Now()
		ld.running++
	}
	s.mu.Unlock()
	if !ok {
		writeJSON(w, http.StatusNotFound,
			errorBody{Error: fmt.Sprintf("unknown deployment %q", id), Class: errClassNotFound})
		return
	}
	defer func() {
		s.mu.Lock()
		ld.running--
		ld.lastUsed = time.Now()
		s.mu.Unlock()
	}()
	var req RunRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest,
			errorBody{Error: fmt.Sprintf("decoding request: %v", err), Class: errClassBadRequest})
		return
	}
	if req.Entry == "" {
		writeJSON(w, http.StatusBadRequest,
			errorBody{Error: "missing entry point name", Class: errClassBadRequest})
		return
	}
	sig, err := ld.dep.Signature(req.Entry)
	if err != nil {
		writeJSON(w, http.StatusNotFound,
			errorBody{Error: err.Error(), Class: errClassNotFound})
		return
	}
	args, err := sig.ParseArgs(req.Args)
	if err != nil {
		writeJSON(w, http.StatusBadRequest,
			errorBody{Error: err.Error(), Class: errClassBadRequest})
		return
	}

	if f := faultinject.At("server.run"); f != nil {
		if err := f.Apply(); err != nil {
			writeJSON(w, http.StatusInternalServerError,
				errorBody{Error: err.Error(), Class: errClassUnavailable, Retryable: true})
			return
		}
	}

	// The run follows the client: a disconnect (or a bounded shutdown)
	// cancels the simulation between instructions instead of letting it
	// burn the machine for an answer nobody will read.
	ctx, cancel := s.runContext(r)
	defer cancel()

	// Machines are single-threaded devices; concurrent runs on one
	// deployment serialize here (deploy replicas to run in parallel).
	ld.mu.Lock()
	before := ld.dep.Cycles()
	val, err := ld.dep.RunContext(ctx, req.Entry, args...)
	elapsed := ld.dep.Cycles() - before
	ld.mu.Unlock()
	if err != nil {
		class, retryable := classifyRunError(err)
		status := http.StatusUnprocessableEntity
		if class == errClassCancelled {
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, errorBody{
			Error:     fmt.Sprintf("running %s: %v", req.Entry, err),
			Class:     class,
			Retryable: retryable,
		})
		return
	}
	writeJSON(w, http.StatusOK, RunResponse{
		Value:   val.I,
		Float:   val.F,
		IsFloat: sig.ReturnsFloat,
		Cycles:  elapsed,
		Target:  string(ld.arch),
	})
}

// RunBatchRequest invokes one entry point across many deployments — the
// fleet-wide counterpart of /v1/deployments/{id}/run. Address the machines
// either explicitly (Deployments) or by module (every live deployment of
// that module); exactly one of the two must be set.
type RunBatchRequest struct {
	Deployments []string `json:"deployments,omitempty"`
	Module      string   `json:"module,omitempty"`
	Entry       string   `json:"entry"`
	Args        []string `json:"args,omitempty"`
}

// RunBatchResult is one machine's outcome within a batch run. Error is set
// (and the value fields zero) when that machine failed; other machines'
// results are unaffected.
type RunBatchResult struct {
	Deployment string  `json:"deployment"`
	Target     string  `json:"target"`
	Value      int64   `json:"value"`
	Float      float64 `json:"float"`
	IsFloat    bool    `json:"is_float"`
	Cycles     int64   `json:"cycles"`
	Error      string  `json:"error,omitempty"`
	// ErrorClass classifies a failure machine-readably: "not_found" (no
	// such entry point), "bad_request" (arguments), "execution" (the
	// simulation trapped), "cancelled" (client disconnect or shutdown),
	// "resource_exhausted" (the run breached its governor — instruction
	// budget, memory limit or run deadline — or the tenant's in-flight cap
	// shed it) or "unavailable" (the backend holding the machine is
	// unreachable — set by the router). Empty on success.
	ErrorClass string `json:"error_class,omitempty"`
	// Retryable marks failures that may succeed if the item is retried:
	// cancelled runs and unavailable backends, but not traps or bad inputs.
	Retryable bool `json:"retryable,omitempty"`
}

// RunBatchResponse lists per-deployment results in the order the
// deployments were addressed (request order, or registration order when
// selected by module).
type RunBatchResponse struct {
	Results []RunBatchResult `json:"results"`
}

// handleRunBatch fans one invocation out across N machines concurrently.
// Machines still serialize their own runs (they are single-threaded
// devices); the batch buys parallelism across machines, not within one.
// Per-machine failures are reported inline so one broken replica cannot
// hide the rest of the fleet's results.
func (s *Server) handleRunBatch(w http.ResponseWriter, r *http.Request) {
	// One batch is one in-flight unit against the tenant's cap, like one run:
	// the cap bounds concurrent requests, MaxBatchJobs bounds each one's fan-out.
	release, admitted := s.admit(w, r)
	if !admitted {
		return
	}
	defer release()
	var req RunBatchRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if req.Entry == "" {
		writeError(w, http.StatusBadRequest, "missing entry point name")
		return
	}
	if (len(req.Deployments) == 0) == (req.Module == "") {
		writeError(w, http.StatusBadRequest, "set exactly one of deployments or module")
		return
	}

	// Resolve the fleet and pin every machine against the sweeper for the
	// duration of the batch, like a single run would.
	now := time.Now()
	s.mu.Lock()
	var ids []string
	if req.Module != "" {
		for _, id := range s.deployOrder {
			if s.deployments[id].module == req.Module {
				ids = append(ids, id)
			}
		}
	} else {
		ids = req.Deployments
	}
	lds := make([]*liveDeployment, len(ids))
	var missing string
	for i, id := range ids {
		ld, ok := s.deployments[id]
		if !ok {
			missing = id
			break
		}
		lds[i] = ld
	}
	if missing == "" && len(ids) > s.cfg.MaxBatchJobs {
		s.mu.Unlock()
		writeError(w, http.StatusBadRequest, "batch of %d runs exceeds the limit of %d", len(ids), s.cfg.MaxBatchJobs)
		return
	}
	if missing == "" {
		for _, ld := range lds {
			ld.lastUsed = now
			ld.running++
		}
	}
	s.mu.Unlock()
	if missing != "" {
		writeError(w, http.StatusNotFound, "unknown deployment %q", missing)
		return
	}
	if len(lds) == 0 {
		writeError(w, http.StatusNotFound, "module %q has no live deployments", req.Module)
		return
	}
	defer func() {
		s.mu.Lock()
		for _, ld := range lds {
			ld.running--
			ld.lastUsed = time.Now()
		}
		s.mu.Unlock()
	}()

	// One shared context for the whole batch: the client disconnecting (or
	// a bounded shutdown) cancels every still-running item.
	ctx, cancel := s.runContext(r)
	defer cancel()

	results := make([]RunBatchResult, len(lds))
	var wg sync.WaitGroup
	for i, ld := range lds {
		wg.Add(1)
		go func(i int, ld *liveDeployment) {
			defer wg.Done()
			res := RunBatchResult{Deployment: ld.id, Target: string(ld.arch)}
			sig, err := ld.dep.Signature(req.Entry)
			if err != nil {
				res.Error = err.Error()
				res.ErrorClass = errClassNotFound
				results[i] = res
				return
			}
			args, err := sig.ParseArgs(req.Args)
			if err != nil {
				res.Error = err.Error()
				res.ErrorClass = errClassBadRequest
				results[i] = res
				return
			}
			if f := faultinject.At("server.run"); f != nil {
				if err := f.Apply(); err != nil {
					res.Error = err.Error()
					res.ErrorClass = errClassUnavailable
					res.Retryable = true
					results[i] = res
					return
				}
			}
			ld.mu.Lock()
			before := ld.dep.Cycles()
			val, err := ld.dep.RunContext(ctx, req.Entry, args...)
			res.Cycles = ld.dep.Cycles() - before
			ld.mu.Unlock()
			if err != nil {
				res.Error = err.Error()
				res.ErrorClass, res.Retryable = classifyRunError(err)
			} else {
				res.Value = val.I
				res.Float = val.F
				res.IsFloat = sig.ReturnsFloat
			}
			results[i] = res
		}(i, ld)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, RunBatchResponse{Results: results})
}

// ProfileResponse is the payload of the profile-export endpoint: the
// deployment's observed execution profile as a versioned annotation value
// (base64 in JSON), ready to be passed back verbatim in
// DeployRequest.Profile to warm a later deployment.
type ProfileResponse struct {
	ID      string `json:"id"`
	Module  string `json:"module"`
	Target  string `json:"target"`
	Profile []byte `json:"profile"`
	// Bytes is the encoded profile size (the annotation's transport cost).
	Bytes int `json:"bytes"`
}

// handleProfile exports the observed execution profile of one tiered
// deployment.
func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	ld, ok := s.deployments[id]
	if ok {
		ld.lastUsed = time.Now()
		ld.running++
	}
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "unknown deployment %q", id)
		return
	}
	defer func() {
		s.mu.Lock()
		ld.running--
		s.mu.Unlock()
	}()
	if !ld.dep.TieringEnabled() {
		writeError(w, http.StatusConflict, "deployment %q is not tiered (deploy with \"tiering\": true)", id)
		return
	}
	// The snapshot reads the machine's live counters; serialize against runs
	// like an invocation would.
	ld.mu.Lock()
	p := ld.dep.ExportProfile()
	ld.mu.Unlock()
	data, err := splitvm.EncodeProfile(p)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "encoding profile: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, ProfileResponse{
		ID:      id,
		Module:  ld.module,
		Target:  string(ld.arch),
		Profile: data,
		Bytes:   len(data),
	})
}

// PoolStats describes one per-target worker pool.
type PoolStats struct {
	Target   string `json:"target"`
	Workers  int    `json:"workers"`
	QueueLen int    `json:"queue_len"`
	QueueCap int    `json:"queue_cap"`
}

// StatsResponse is the /v1/stats payload: code-cache effectiveness,
// compilation outcomes (including annotation-fallback compilations), plus
// the server's own registries and backpressure counters.
type StatsResponse struct {
	Cache splitvm.CacheStats `json:"cache"`
	// Compile counts completed JIT compilations and — in
	// fallback_compilations — how many of them had at least one annotation
	// section degrade to online-only compilation (uploads from a newer
	// offline toolchain than this server understands). The per-deployment
	// annotation_fallbacks field counts sections instead, so the two units
	// differ deliberately.
	Compile     splitvm.CompileStats `json:"compile"`
	Modules     int                  `json:"modules"`
	Deployments int                  `json:"deployments"`
	// Rejected counts batches refused with 429 for queue saturation since the
	// server started; QuotaRejected counts batches refused for exceeding a
	// per-module or per-tenant deployment quota.
	Rejected      int64 `json:"rejected"`
	QuotaRejected int64 `json:"quota_rejected"`
	// DeploymentsEvicted counts idle deployments dropped by the -deploy-ttl
	// sweeper since the server started (always zero with TTL disabled).
	DeploymentsEvicted int64       `json:"deployments_evicted"`
	Pools              []PoolStats `json:"pools"`
	// RunsShed counts run and run-batch requests shed with 429 by the
	// per-tenant in-flight cap since the server started (always zero with
	// -max-inflight-per-tenant unset).
	RunsShed int64 `json:"runs_shed"`
	// Guard sums the panic-firewall activity of the live deployments:
	// quarantines (runs that ended in a recovered guest panic) and rebuilds
	// (machines re-instantiated from their cached image afterwards).
	Guard splitvm.GuardStats `json:"guard"`
	// TieredDeployments counts live deployments with tiering enabled, and
	// Tier sums their tiering activity (promotions, fused pairs,
	// profile-guided register allocation validations, warm imports).
	TieredDeployments int               `json:"tiered_deployments"`
	Tier              splitvm.TierStats `json:"tier"`
	// Latency maps instrumented routes (upload, deploy, run, run_batch) to
	// their request-latency distributions; routes with no traffic yet are
	// omitted.
	Latency map[string]LatencySummary `json:"latency,omitempty"`
	// Journal reports the deployment journal's persistence and startup-
	// replay counters; omitted when the server runs without one.
	Journal *JournalStatsResponse `json:"journal,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := StatsResponse{Cache: s.eng.CacheStats(), Compile: s.eng.CompileStats()}
	s.mu.Lock()
	st.Modules = len(s.modules)
	st.Deployments = len(s.deployments)
	st.Rejected = s.rejected
	st.QuotaRejected = s.quotaRejected
	st.DeploymentsEvicted = s.evicted
	st.RunsShed = s.adm.shedCount()
	live := make([]*liveDeployment, 0, len(s.deployments))
	for _, ld := range s.deployments {
		live = append(live, ld)
	}
	for a, p := range s.pools {
		st.Pools = append(st.Pools, PoolStats{
			Target:   string(a),
			Workers:  s.cfg.WorkersPerTarget,
			QueueLen: len(p.jobs),
			QueueCap: cap(p.jobs),
		})
	}
	s.mu.Unlock()
	// Tier and guard counters read live machine state, so they are aggregated
	// outside the registry lock, serializing with runs per deployment only.
	for _, ld := range live {
		ld.mu.Lock()
		gs := ld.dep.GuardStats()
		tiered := ld.dep.TieringEnabled()
		var ts splitvm.TierStats
		if tiered {
			ts = ld.dep.TierStats()
		}
		ld.mu.Unlock()
		st.Guard.Quarantines += gs.Quarantines
		st.Guard.Rebuilds += gs.Rebuilds
		if !tiered {
			continue
		}
		st.TieredDeployments++
		st.Tier.Promotions += ts.Promotions
		st.Tier.PromoteCallsSum += ts.PromoteCallsSum
		st.Tier.FusedPairs += ts.FusedPairs
		st.Tier.ReallocChecked += ts.ReallocChecked
		st.Tier.ReallocConfirmed += ts.ReallocConfirmed
		st.Tier.ReallocDiverged += ts.ReallocDiverged
		st.Tier.WarmSeeded += ts.WarmSeeded
		st.Tier.WarmDegraded += ts.WarmDegraded
	}
	sort.Slice(st.Pools, func(i, j int) bool { return st.Pools[i].Target < st.Pools[j].Target })
	st.Latency = s.lat.summaries()
	if s.jnl != nil {
		s.mu.Lock()
		st.Journal = &JournalStatsResponse{
			Journal:             s.jnl.Stats(),
			ReplayedModules:     s.replayedModules,
			ReplayedDeployments: s.replayedDeployments,
			ReplayFailed:        s.replayFailed,
			AppendErrors:        s.journalAppendErrs,
		}
		s.mu.Unlock()
	}
	writeJSON(w, http.StatusOK, st)
}
