package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
)

// runOnce invokes sumsq(64) on one deployment and checks the result.
func runOnce(t *testing.T, ts *httptest.Server, id string) {
	t.Helper()
	resp := postJSON(t, ts.URL+"/v1/deployments/"+id+"/run", RunRequest{Entry: "sumsq", Args: []string{"64"}})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("run: status %d: %s", resp.StatusCode, body)
	}
	rr := decodeJSON[RunResponse](t, resp.Body)
	if want := int64(64 * 65 * 129 / 6); rr.Value != want {
		t.Fatalf("sumsq(64) = %d, want %d", rr.Value, want)
	}
}

// TestTieredDeployEndToEnd drives the whole profile loop over HTTP: deploy
// tiered, run to promotion, export the profile, warm a second deployment
// with it, and watch the tier counters in /v1/stats.
func TestTieredDeployEndToEnd(t *testing.T) {
	if v := os.Getenv("SPLITVM_TIER"); v == "1" || v == "on" {
		t.Skip("SPLITVM_TIER forces tiering on every deployment; this test exercises the per-deploy opt-in")
	}
	_, ts := newTestServer(t, Config{})
	id := upload(t, ts, encodeModule(t, sumsqSource))

	// Plain deployment: no tiering, and asking for its profile is a 409.
	resp := postJSON(t, ts.URL+"/v1/deploy", DeployRequest{Module: id, Targets: []string{"mcu"}})
	plain := decodeJSON[DeployResponse](t, resp.Body)
	resp.Body.Close()
	if len(plain.Deployments) != 1 || plain.Deployments[0].Tiering {
		t.Fatalf("plain deployment unexpectedly tiered: %+v", plain.Deployments)
	}
	if r, err := http.Get(ts.URL + "/v1/deployments/" + plain.Deployments[0].ID + "/profile"); err != nil || r.StatusCode != http.StatusConflict {
		t.Fatalf("profile of untiered deployment: %v %v", r.StatusCode, err)
	} else {
		r.Body.Close()
	}

	// Tiered deployment, promoted after two calls.
	resp = postJSON(t, ts.URL+"/v1/deploy", DeployRequest{
		Module: id, Targets: []string{"x86-sse"}, Tiering: true, PromoteCalls: 2,
	})
	if resp.StatusCode != http.StatusCreated {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("tiered deploy: status %d: %s", resp.StatusCode, body)
	}
	tiered := decodeJSON[DeployResponse](t, resp.Body)
	resp.Body.Close()
	tid := tiered.Deployments[0].ID
	if !tiered.Deployments[0].Tiering {
		t.Fatalf("deployment did not report tiering: %+v", tiered.Deployments[0])
	}
	for i := 0; i < 6; i++ {
		runOnce(t, ts, tid)
	}
	st := getStats(t, ts)
	if st.TieredDeployments != 1 || st.Tier.Promotions != 1 || st.Tier.PromoteCallsSum != 2 {
		t.Fatalf("tier stats after promotion = %+v", st.Tier)
	}

	// Export the profile and warm a fresh deployment with it: promotion on
	// the first call instead of the threshold.
	r, err := http.Get(ts.URL + "/v1/deployments/" + tid + "/profile")
	if err != nil {
		t.Fatal(err)
	}
	pr := decodeJSON[ProfileResponse](t, r.Body)
	r.Body.Close()
	if len(pr.Profile) == 0 || pr.Bytes != len(pr.Profile) {
		t.Fatalf("profile export = %+v", pr)
	}

	resp = postJSON(t, ts.URL+"/v1/deploy", DeployRequest{
		Module: id, Targets: []string{"x86-sse"}, PromoteCalls: 5, Profile: pr.Profile,
	})
	warm := decodeJSON[DeployResponse](t, resp.Body)
	resp.Body.Close()
	wid := warm.Deployments[0].ID
	if warm.Deployments[0].ProfileFallback != "" {
		t.Fatalf("warm deploy fell back: %+v", warm.Deployments[0])
	}
	runOnce(t, ts, wid)
	st = getStats(t, ts)
	if st.TieredDeployments != 2 || st.Tier.WarmSeeded < 1 {
		t.Fatalf("warm import not visible in stats: %+v", st.Tier)
	}
	// Warm deployment promoted on call 1: the sum grows by exactly 1.
	if st.Tier.Promotions != 2 || st.Tier.PromoteCallsSum != 3 {
		t.Fatalf("warm promotion latency wrong: %+v", st.Tier)
	}
}

// TestTieredDeployProfileFallback: a corrupt (or future-schema) profile
// blob degrades to deploying without warm counters — surfaced per
// deployment, never a failed batch.
func TestTieredDeployProfileFallback(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := upload(t, ts, encodeModule(t, sumsqSource))
	resp := postJSON(t, ts.URL+"/v1/deploy", DeployRequest{
		Module: id, Targets: []string{"mcu"}, Profile: []byte{0xde, 0xad, 0xbe, 0xef},
	})
	if resp.StatusCode != http.StatusCreated {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("deploy with bad profile: status %d: %s", resp.StatusCode, body)
	}
	dr := decodeJSON[DeployResponse](t, resp.Body)
	resp.Body.Close()
	d := dr.Deployments[0]
	if d.ProfileFallback == "" {
		t.Fatalf("bad profile did not surface a fallback: %+v", d)
	}
	if !d.Tiering {
		t.Fatalf("profile request should still imply tiering: %+v", d)
	}
	runOnce(t, ts, d.ID) // and the machine runs fine without it
}
