package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Router shards the /v1/* API across a fleet of backend svd servers: one
// stateless front door, N replicas each holding their own engine (ideally
// over a shared disk-cache volume, so a module JIT-compiled by any replica
// is warm for all of them).
//
// Placement is consistent hashing on the module hash with bounded load (see
// hashRing): deployments of one module concentrate on one replica — maximum
// code-cache reuse — until that replica is saturated or down, then overflow
// clockwise. Module uploads are replicated to every healthy backend (they
// are idempotent by content and small next to compiled images), so any
// replica the ring picks can deploy any known module.
//
// Deployment IDs are namespaced by backend — "b2.d-000017" is backend 2's
// local "d-000017" — which is what lets the router stay stateless: every
// deployment-addressed request carries its own routing key. Transport
// failures mark the backend unhealthy and retry the next replica clockwise;
// HTTP-level errors (4xx/5xx) are the backend's answer and proxy through
// unchanged.
type Router struct {
	cfg    RouterConfig
	ring   *hashRing
	names  []string
	client *http.Client

	cancel context.CancelFunc
	wg     sync.WaitGroup
	mux    *http.ServeMux

	mu       sync.Mutex
	healthy  []bool
	inflight []int64
	routed   []int64
	retries  int64
	fanouts  int64
}

// RouterConfig parameterizes a Router. Backends is required; everything
// else defaults.
type RouterConfig struct {
	// Backends are the base URLs of the svd replicas (http://host:port).
	// Order matters: it defines the b0, b1, … namespace baked into
	// deployment IDs, so keep it stable across router restarts.
	Backends []string
	// LoadFactor is the bounded-load headroom: a backend is skipped when its
	// in-flight requests exceed LoadFactor × the fair share (default 1.25).
	LoadFactor float64
	// HealthInterval is how often backends are probed (default 2s; negative
	// disables active probing — backends are then only marked down by
	// transport failures).
	HealthInterval time.Duration
	// HealthTimeout bounds one probe (default 1s).
	HealthTimeout time.Duration
	// MaxModuleBytes caps proxied module uploads (default 4 MiB, matching
	// Config.MaxModuleBytes).
	MaxModuleBytes int64
}

func (c *RouterConfig) defaults() {
	if c.LoadFactor <= 1 {
		c.LoadFactor = 1.25
	}
	if c.HealthInterval == 0 {
		c.HealthInterval = 2 * time.Second
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = time.Second
	}
	if c.MaxModuleBytes <= 0 {
		c.MaxModuleBytes = 4 << 20
	}
}

// NewRouter builds the front door over the configured backends. Backends
// start healthy and are probed immediately and then periodically; Close
// stops the prober.
func NewRouter(cfg RouterConfig) (*Router, error) {
	cfg.defaults()
	n := len(cfg.Backends)
	if n == 0 {
		return nil, errors.New("router needs at least one backend")
	}
	ctx, cancel := context.WithCancel(context.Background())
	rt := &Router{
		cfg:      cfg,
		ring:     newHashRing(n),
		names:    make([]string, n),
		client:   &http.Client{},
		cancel:   cancel,
		healthy:  make([]bool, n),
		inflight: make([]int64, n),
		routed:   make([]int64, n),
	}
	for i := range rt.names {
		rt.names[i] = fmt.Sprintf("b%d", i)
		rt.healthy[i] = true
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/modules", rt.handleUpload)
	mux.HandleFunc("GET /v1/modules", rt.handleListModules)
	mux.HandleFunc("POST /v1/deploy", rt.handleDeploy)
	mux.HandleFunc("GET /v1/deployments", rt.handleListDeployments)
	mux.HandleFunc("POST /v1/deployments/{id}/run", rt.handleRun)
	mux.HandleFunc("POST /v1/run-batch", rt.handleRunBatch)
	mux.HandleFunc("GET /v1/deployments/{id}/profile", rt.handleProfile)
	mux.HandleFunc("GET /v1/stats", rt.handleStats)
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	rt.mux = mux
	if cfg.HealthInterval > 0 {
		rt.probeAll()
		rt.wg.Add(1)
		go rt.healthLoop(ctx)
	}
	return rt, nil
}

// ServeHTTP implements http.Handler.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) { rt.mux.ServeHTTP(w, r) }

// Close stops the health prober.
func (rt *Router) Close() {
	rt.cancel()
	rt.wg.Wait()
}

func (rt *Router) healthLoop(ctx context.Context) {
	defer rt.wg.Done()
	t := time.NewTicker(rt.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			rt.probeAll()
		}
	}
}

// probeAll health-checks every backend concurrently. A probe is the only
// way a backend marked down by a transport failure comes back.
func (rt *Router) probeAll() {
	var wg sync.WaitGroup
	up := make([]bool, len(rt.cfg.Backends))
	for i, base := range rt.cfg.Backends {
		wg.Add(1)
		go func(i int, base string) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.HealthTimeout)
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/healthz", nil)
			if err != nil {
				return
			}
			resp, err := rt.client.Do(req)
			if err != nil {
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			up[i] = resp.StatusCode == http.StatusOK
		}(i, base)
	}
	wg.Wait()
	rt.mu.Lock()
	copy(rt.healthy, up)
	rt.mu.Unlock()
}

func (rt *Router) markDown(b int) {
	rt.mu.Lock()
	rt.healthy[b] = false
	rt.mu.Unlock()
}

// snapshot copies the health and load vectors for a placement decision.
func (rt *Router) snapshot() (healthy []bool, inflight []int64) {
	rt.mu.Lock()
	healthy = append([]bool(nil), rt.healthy...)
	inflight = append([]int64(nil), rt.inflight...)
	rt.mu.Unlock()
	return
}

// healthyBackends returns the indexes of backends currently believed up.
func (rt *Router) healthyBackends() []int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	var out []int
	for i, h := range rt.healthy {
		if h {
			out = append(out, i)
		}
	}
	return out
}

// forward sends one request to one backend, tracking in-flight load. A nil
// error means an HTTP response was received (whatever its status); the
// caller owns resp.Body.
func (rt *Router) forward(ctx context.Context, b int, method, path string, body []byte, contentType string) (*http.Response, error) {
	rt.mu.Lock()
	rt.inflight[b]++
	rt.routed[b]++
	rt.mu.Unlock()
	defer func() {
		rt.mu.Lock()
		rt.inflight[b]--
		rt.mu.Unlock()
	}()
	req, err := http.NewRequestWithContext(ctx, method, rt.cfg.Backends[b]+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	return rt.client.Do(req)
}

// forwardByKey places a keyed request on the ring and retries clockwise
// across replicas on transport failures (the failed backend is marked down
// until the next successful probe).
func (rt *Router) forwardByKey(ctx context.Context, key, method, path string, body []byte, contentType string) (*http.Response, int, error) {
	var lastErr error
	for attempt := 0; attempt < len(rt.cfg.Backends); attempt++ {
		healthy, inflight := rt.snapshot()
		b := rt.ring.pick(key, healthy, inflight, rt.cfg.LoadFactor)
		if b == -1 {
			break
		}
		resp, err := rt.forward(ctx, b, method, path, body, contentType)
		if err == nil {
			return resp, b, nil
		}
		lastErr = err
		rt.markDown(b)
		rt.mu.Lock()
		rt.retries++
		rt.mu.Unlock()
	}
	if lastErr == nil {
		lastErr = errors.New("no healthy backend")
	}
	return nil, -1, lastErr
}

// copyResponse proxies a backend response through unchanged.
func copyResponse(w http.ResponseWriter, resp *http.Response) {
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// splitDeployID resolves a namespaced deployment ID ("b2.d-000017") to its
// backend index and backend-local ID.
func (rt *Router) splitDeployID(id string) (int, string, bool) {
	name, local, ok := strings.Cut(id, ".")
	if !ok {
		return 0, "", false
	}
	for i, n := range rt.names {
		if n == name {
			return i, local, true
		}
	}
	return 0, "", false
}

func (rt *Router) prefixID(b int, local string) string {
	return rt.names[b] + "." + local
}

// handleUpload replicates a module to every healthy backend so the ring can
// later place its deployments on any of them. Uploads are idempotent by
// content, so replication is safe to repeat; the client sees success when
// at least one replica accepted (stragglers pick the module up from the
// shared cache volume or a re-upload).
func (rt *Router) handleUpload(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, rt.cfg.MaxModuleBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	if int64(len(body)) > rt.cfg.MaxModuleBytes {
		writeError(w, http.StatusRequestEntityTooLarge, "module exceeds %d bytes", rt.cfg.MaxModuleBytes)
		return
	}
	targets := rt.healthyBackends()
	if len(targets) == 0 {
		writeError(w, http.StatusBadGateway, "no healthy backend")
		return
	}
	rt.mu.Lock()
	rt.fanouts++
	rt.mu.Unlock()
	type result struct {
		b    int
		resp *http.Response
		err  error
	}
	results := make([]result, len(targets))
	var wg sync.WaitGroup
	for i, b := range targets {
		wg.Add(1)
		go func(i, b int) {
			defer wg.Done()
			resp, err := rt.forward(r.Context(), b, http.MethodPost, "/v1/modules", body, "application/octet-stream")
			results[i] = result{b: b, resp: resp, err: err}
		}(i, b)
	}
	wg.Wait()
	var winner, fallback *http.Response
	for _, res := range results {
		switch {
		case res.err != nil:
			rt.markDown(res.b)
		case res.resp.StatusCode == http.StatusCreated && winner == nil:
			winner = res.resp
		case fallback == nil:
			fallback = res.resp
		}
	}
	for _, res := range results {
		if res.resp != nil && res.resp != winner && res.resp != fallback {
			io.Copy(io.Discard, res.resp.Body)
			res.resp.Body.Close()
		}
	}
	resp := winner
	if resp == nil {
		resp = fallback
	}
	if resp == nil {
		writeError(w, http.StatusBadGateway, "every backend failed the upload")
		return
	}
	defer resp.Body.Close()
	if fallback != nil && fallback != resp {
		io.Copy(io.Discard, fallback.Body)
		fallback.Body.Close()
	}
	copyResponse(w, resp)
}

// handleDeploy routes a batch by its module hash: the ring concentrates one
// module's deployments on one replica so its JIT image is compiled once.
func (rt *Router) handleDeploy(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	var req struct {
		Module string `json:"module"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	resp, b, err := rt.forwardByKey(r.Context(), req.Module, http.MethodPost, "/v1/deploy", body, "application/json")
	if err != nil {
		writeError(w, http.StatusBadGateway, "deploy: %v", err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		copyResponse(w, resp)
		return
	}
	var dr DeployResponse
	if err := json.NewDecoder(resp.Body).Decode(&dr); err != nil {
		writeError(w, http.StatusBadGateway, "decoding backend response: %v", err)
		return
	}
	for i := range dr.Deployments {
		dr.Deployments[i].ID = rt.prefixID(b, dr.Deployments[i].ID)
	}
	writeJSON(w, http.StatusCreated, dr)
}

// handleRun forwards an invocation to the backend named by the deployment
// ID. No retry: the machine lives on exactly one replica.
func (rt *Router) handleRun(w http.ResponseWriter, r *http.Request) {
	b, local, ok := rt.splitDeployID(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown deployment %q", r.PathValue("id"))
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	resp, err := rt.forward(r.Context(), b, http.MethodPost, "/v1/deployments/"+local+"/run", body, "application/json")
	if err != nil {
		rt.markDown(b)
		writeError(w, http.StatusBadGateway, "backend %s: %v", rt.names[b], err)
		return
	}
	defer resp.Body.Close()
	copyResponse(w, resp)
}

// handleProfile forwards a profile export, restoring the namespaced ID in
// the response.
func (rt *Router) handleProfile(w http.ResponseWriter, r *http.Request) {
	b, local, ok := rt.splitDeployID(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown deployment %q", r.PathValue("id"))
		return
	}
	resp, err := rt.forward(r.Context(), b, http.MethodGet, "/v1/deployments/"+local+"/profile", nil, "")
	if err != nil {
		rt.markDown(b)
		writeError(w, http.StatusBadGateway, "backend %s: %v", rt.names[b], err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		copyResponse(w, resp)
		return
	}
	var pr ProfileResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		writeError(w, http.StatusBadGateway, "decoding backend response: %v", err)
		return
	}
	pr.ID = rt.prefixID(b, pr.ID)
	writeJSON(w, http.StatusOK, pr)
}

// handleRunBatch splits a batch across the fleet: an explicit deployment
// list is grouped by backend, a module selector fans out to every healthy
// replica (deployments of one module can overflow onto several under
// bounded load). Results keep request order; per-machine errors stay
// per-result, as on a single backend.
func (rt *Router) handleRunBatch(w http.ResponseWriter, r *http.Request) {
	var req RunBatchRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if req.Entry == "" {
		writeError(w, http.StatusBadRequest, "missing entry point name")
		return
	}
	if (len(req.Deployments) == 0) == (req.Module == "") {
		writeError(w, http.StatusBadRequest, "set exactly one of deployments or module")
		return
	}
	rt.mu.Lock()
	rt.fanouts++
	rt.mu.Unlock()

	type shard struct {
		b       int
		req     RunBatchRequest
		slots   []int // result index per entry (explicit-list mode)
		resp    RunBatchResponse
		status  int
		errBody errorBody
		err     error
	}
	var shards []*shard
	if req.Module != "" {
		for _, b := range rt.healthyBackends() {
			shards = append(shards, &shard{b: b, req: RunBatchRequest{Module: req.Module, Entry: req.Entry, Args: req.Args}})
		}
		if len(shards) == 0 {
			writeError(w, http.StatusBadGateway, "no healthy backend")
			return
		}
	} else {
		byBackend := map[int]*shard{}
		for i, id := range req.Deployments {
			b, local, ok := rt.splitDeployID(id)
			if !ok {
				writeError(w, http.StatusNotFound, "unknown deployment %q", id)
				return
			}
			sh := byBackend[b]
			if sh == nil {
				sh = &shard{b: b, req: RunBatchRequest{Entry: req.Entry, Args: req.Args}}
				byBackend[b] = sh
				shards = append(shards, sh)
			}
			sh.req.Deployments = append(sh.req.Deployments, local)
			sh.slots = append(sh.slots, i)
		}
	}

	var wg sync.WaitGroup
	for _, sh := range shards {
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			body, err := json.Marshal(sh.req)
			if err != nil {
				sh.err = err
				return
			}
			resp, err := rt.forward(r.Context(), sh.b, http.MethodPost, "/v1/run-batch", body, "application/json")
			if err != nil {
				rt.markDown(sh.b)
				sh.err = err
				return
			}
			defer resp.Body.Close()
			sh.status = resp.StatusCode
			if resp.StatusCode == http.StatusOK {
				sh.err = json.NewDecoder(resp.Body).Decode(&sh.resp)
			} else {
				_ = json.NewDecoder(resp.Body).Decode(&sh.errBody)
			}
		}(sh)
	}
	wg.Wait()

	if req.Module != "" {
		// Merge module-wide shards; replicas without machines for the module
		// answer 404 and drop out, any other failure fails the batch (silently
		// missing results would misreport the fleet).
		var out RunBatchResponse
		sawFleet := false
		for _, sh := range shards {
			if sh.err != nil {
				writeError(w, http.StatusBadGateway, "backend %s: %v", rt.names[sh.b], sh.err)
				return
			}
			if sh.status == http.StatusNotFound {
				continue
			}
			if sh.status != http.StatusOK {
				writeJSON(w, sh.status, sh.errBody)
				return
			}
			sawFleet = true
			for _, res := range sh.resp.Results {
				res.Deployment = rt.prefixID(sh.b, res.Deployment)
				out.Results = append(out.Results, res)
			}
		}
		if !sawFleet {
			writeError(w, http.StatusNotFound, "module %q has no live deployments", req.Module)
			return
		}
		writeJSON(w, http.StatusOK, out)
		return
	}

	out := RunBatchResponse{Results: make([]RunBatchResult, len(req.Deployments))}
	for _, sh := range shards {
		if sh.err != nil {
			writeError(w, http.StatusBadGateway, "backend %s: %v", rt.names[sh.b], sh.err)
			return
		}
		if sh.status != http.StatusOK {
			writeJSON(w, sh.status, sh.errBody)
			return
		}
		if len(sh.resp.Results) != len(sh.slots) {
			writeError(w, http.StatusBadGateway, "backend %s returned %d results for %d runs", rt.names[sh.b], len(sh.resp.Results), len(sh.slots))
			return
		}
		for j, res := range sh.resp.Results {
			res.Deployment = rt.prefixID(sh.b, res.Deployment)
			out.Results[sh.slots[j]] = res
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// handleListModules merges the module registries of every healthy backend,
// deduplicated by content hash (uploads are replicated, so every replica
// normally lists the same set).
func (rt *Router) handleListModules(w http.ResponseWriter, r *http.Request) {
	merged := make(map[string]ModuleInfo)
	var order []string
	for _, b := range rt.healthyBackends() {
		resp, err := rt.forward(r.Context(), b, http.MethodGet, "/v1/modules", nil, "")
		if err != nil {
			rt.markDown(b)
			continue
		}
		var body struct {
			Modules []ModuleInfo `json:"modules"`
		}
		err = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if err != nil {
			continue
		}
		for _, m := range body.Modules {
			if _, ok := merged[m.ID]; !ok {
				merged[m.ID] = m
				order = append(order, m.ID)
			}
		}
	}
	out := make([]ModuleInfo, 0, len(order))
	for _, id := range order {
		out = append(out, merged[id])
	}
	writeJSON(w, http.StatusOK, map[string]any{"modules": out})
}

// handleListDeployments concatenates every healthy backend's deployments,
// IDs namespaced.
func (rt *Router) handleListDeployments(w http.ResponseWriter, r *http.Request) {
	var out DeployResponse
	for _, b := range rt.healthyBackends() {
		resp, err := rt.forward(r.Context(), b, http.MethodGet, "/v1/deployments", nil, "")
		if err != nil {
			rt.markDown(b)
			continue
		}
		var dr DeployResponse
		err = json.NewDecoder(resp.Body).Decode(&dr)
		resp.Body.Close()
		if err != nil {
			continue
		}
		for _, d := range dr.Deployments {
			d.ID = rt.prefixID(b, d.ID)
			out.Deployments = append(out.Deployments, d)
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// RouterBackendStats describes one backend as the router sees it.
type RouterBackendStats struct {
	Name    string `json:"name"`
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	// Routed counts requests this router sent to the backend; Inflight is
	// the bounded-load vector's current entry.
	Routed   int64 `json:"routed"`
	Inflight int64 `json:"inflight"`
}

// RouterStats is the router's own /v1/stats section.
type RouterStats struct {
	Backends []RouterBackendStats `json:"backends"`
	// Retries counts transport failures that moved a request to the next
	// replica clockwise; Fanouts counts requests replicated or sharded to
	// multiple backends (uploads, run-batch).
	Retries int64 `json:"retries"`
	Fanouts int64 `json:"fanouts"`
}

// RouterStatsResponse is the router's /v1/stats payload: its own routing
// counters plus each healthy backend's full StatsResponse, keyed by
// backend name.
type RouterStatsResponse struct {
	Router   RouterStats              `json:"router"`
	Backends map[string]StatsResponse `json:"backends"`
}

// Stats snapshots the router's routing counters.
func (rt *Router) Stats() RouterStats {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	st := RouterStats{Retries: rt.retries, Fanouts: rt.fanouts}
	for i, base := range rt.cfg.Backends {
		st.Backends = append(st.Backends, RouterBackendStats{
			Name:     rt.names[i],
			URL:      base,
			Healthy:  rt.healthy[i],
			Routed:   rt.routed[i],
			Inflight: rt.inflight[i],
		})
	}
	return st
}

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	out := RouterStatsResponse{Backends: make(map[string]StatsResponse)}
	for _, b := range rt.healthyBackends() {
		resp, err := rt.forward(r.Context(), b, http.MethodGet, "/v1/stats", nil, "")
		if err != nil {
			rt.markDown(b)
			continue
		}
		var st StatsResponse
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			continue
		}
		out.Backends[rt.names[b]] = st
	}
	out.Router = rt.Stats()
	writeJSON(w, http.StatusOK, out)
}

// handleHealthz reports the router healthy while at least one backend is.
func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	n := len(rt.healthyBackends())
	status := http.StatusOK
	state := "ok"
	if n == 0 {
		status = http.StatusServiceUnavailable
		state = "no healthy backend"
	}
	writeJSON(w, status, map[string]any{"status": state, "healthy_backends": n, "backends": len(rt.cfg.Backends)})
}
