package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/faultinject"
)

// Router shards the /v1/* API across a fleet of backend svd servers: one
// stateless front door, N replicas each holding their own engine (ideally
// over a shared disk-cache volume, so a module JIT-compiled by any replica
// is warm for all of them).
//
// Placement is consistent hashing on the module hash with bounded load (see
// hashRing): deployments of one module concentrate on one replica — maximum
// code-cache reuse — until that replica is saturated or down, then overflow
// clockwise. Module uploads are replicated to every healthy backend (they
// are idempotent by content and small next to compiled images), so any
// replica the ring picks can deploy any known module.
//
// Deployment IDs are namespaced by backend — "b2.d-000017" is backend 2's
// local "d-000017" — which is what lets the router stay stateless for
// routing: every deployment-addressed request carries its own routing key.
// HTTP-level errors (4xx/5xx) are the backend's answer and proxy through
// unchanged.
//
// Transport failures feed per-backend circuit breakers (see breaker):
// consecutive failures open the breaker and take the replica out of the
// ring, a cooldown later it is probed half-open, and consecutive successes
// readmit it. For runs the router additionally fails over: it remembers how
// every deployment it created can be re-created (module, target, options),
// and when a backend dies mid-run it re-deploys the machine on the next
// healthy replica and retries there, within the request deadline.
type Router struct {
	cfg    RouterConfig
	ring   *hashRing
	names  []string
	client *http.Client

	cancel context.CancelFunc
	wg     sync.WaitGroup
	mux    *http.ServeMux

	breakers []*breaker

	mu                sync.Mutex
	meta              map[string]deployMeta // namespaced id → re-create recipe
	alias             map[string]string     // failed-over id → replacement id
	inflight          []int64
	routed            []int64
	retries           int64
	fanouts           int64
	failovers         int64
	failoverRedeploys int64
	failoverFailed    int64
}

// deployMeta is the recipe for re-creating one deployment elsewhere: the
// original deploy request narrowed to this machine's target, plus where it
// currently lives.
type deployMeta struct {
	backend int
	module  string
	target  string
	req     DeployRequest
}

// RouterConfig parameterizes a Router. Backends is required; everything
// else defaults.
type RouterConfig struct {
	// Backends are the base URLs of the svd replicas (http://host:port).
	// Order matters: it defines the b0, b1, … namespace baked into
	// deployment IDs, so keep it stable across router restarts.
	Backends []string
	// LoadFactor is the bounded-load headroom: a backend is skipped when its
	// in-flight requests exceed LoadFactor × the fair share (default 1.25).
	LoadFactor float64
	// HealthInterval is how often backends are probed (default 2s; negative
	// disables active probing — backends are then only marked down by
	// transport failures).
	HealthInterval time.Duration
	// HealthTimeout bounds one probe (default 1s).
	HealthTimeout time.Duration
	// MaxModuleBytes caps proxied module uploads (default 4 MiB, matching
	// Config.MaxModuleBytes).
	MaxModuleBytes int64
	// BreakerFailures is how many consecutive transport failures (probes or
	// real traffic) open a backend's circuit breaker (default 3).
	BreakerFailures int
	// BreakerSuccesses is how many consecutive half-open successes close an
	// open breaker again (default 2).
	BreakerSuccesses int
	// BreakerCooldown is how long an open breaker blocks a backend before
	// the first half-open probe (default 5s).
	BreakerCooldown time.Duration
	// RunDeadline bounds one run request end to end, including failover
	// re-deploys and retries (default 60s; negative disables).
	RunDeadline time.Duration
	// RunBackoff is the initial failover backoff, doubled (with ±50% jitter)
	// each time the router finds no usable replica (default 25ms).
	RunBackoff time.Duration
}

func (c *RouterConfig) defaults() {
	if c.LoadFactor <= 1 {
		c.LoadFactor = 1.25
	}
	if c.HealthInterval == 0 {
		c.HealthInterval = 2 * time.Second
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = time.Second
	}
	if c.MaxModuleBytes <= 0 {
		c.MaxModuleBytes = 4 << 20
	}
	if c.BreakerFailures <= 0 {
		c.BreakerFailures = 3
	}
	if c.BreakerSuccesses <= 0 {
		c.BreakerSuccesses = 2
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.RunDeadline == 0 {
		c.RunDeadline = 60 * time.Second
	}
	if c.RunBackoff <= 0 {
		c.RunBackoff = 25 * time.Millisecond
	}
}

// NewRouter builds the front door over the configured backends. Backends
// start healthy and are probed immediately and then periodically; Close
// stops the prober.
func NewRouter(cfg RouterConfig) (*Router, error) {
	cfg.defaults()
	n := len(cfg.Backends)
	if n == 0 {
		return nil, errors.New("router needs at least one backend")
	}
	ctx, cancel := context.WithCancel(context.Background())
	rt := &Router{
		cfg:      cfg,
		ring:     newHashRing(n),
		names:    make([]string, n),
		client:   &http.Client{},
		cancel:   cancel,
		breakers: make([]*breaker, n),
		meta:     make(map[string]deployMeta),
		alias:    make(map[string]string),
		inflight: make([]int64, n),
		routed:   make([]int64, n),
	}
	bcfg := breakerConfig{
		failures:  cfg.BreakerFailures,
		successes: cfg.BreakerSuccesses,
		cooldown:  cfg.BreakerCooldown,
	}
	for i := range rt.names {
		rt.names[i] = fmt.Sprintf("b%d", i)
		rt.breakers[i] = newBreaker(bcfg)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/modules", rt.handleUpload)
	mux.HandleFunc("GET /v1/modules", rt.handleListModules)
	mux.HandleFunc("POST /v1/deploy", rt.handleDeploy)
	mux.HandleFunc("GET /v1/deployments", rt.handleListDeployments)
	mux.HandleFunc("POST /v1/deployments/{id}/run", rt.handleRun)
	mux.HandleFunc("POST /v1/run-batch", rt.handleRunBatch)
	mux.HandleFunc("GET /v1/deployments/{id}/profile", rt.handleProfile)
	mux.HandleFunc("GET /v1/stats", rt.handleStats)
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	rt.mux = mux
	if cfg.HealthInterval > 0 {
		rt.probeAll()
		rt.wg.Add(1)
		go rt.healthLoop(ctx)
	}
	return rt, nil
}

// ServeHTTP implements http.Handler.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) { rt.mux.ServeHTTP(w, r) }

// Close stops the health prober.
func (rt *Router) Close() {
	rt.cancel()
	rt.wg.Wait()
}

func (rt *Router) healthLoop(ctx context.Context) {
	defer rt.wg.Done()
	t := time.NewTicker(rt.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			rt.probeAll()
		}
	}
}

// probeAll health-checks every backend concurrently. Probes feed the same
// breakers as real traffic: an ejected backend must answer
// BreakerSuccesses probes in a row before it is readmitted, and a flapping
// one must fail BreakerFailures times before it is ejected.
func (rt *Router) probeAll() {
	var wg sync.WaitGroup
	now := time.Now()
	for i, base := range rt.cfg.Backends {
		if !rt.breakers[i].allow(now) {
			continue // open and still cooling down — not even probes get through
		}
		wg.Add(1)
		go func(i int, base string) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.HealthTimeout)
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/healthz", nil)
			if err != nil {
				return
			}
			resp, err := rt.client.Do(req)
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			if err == nil && resp.StatusCode == http.StatusOK {
				rt.breakers[i].onSuccess()
			} else {
				rt.breakers[i].onFailure(time.Now())
			}
		}(i, base)
	}
	wg.Wait()
}

// snapshot derives the health vector from the breakers (open breakers past
// their cooldown admit the request as a half-open probe) and copies the
// load vector, for a placement decision.
func (rt *Router) snapshot() (healthy []bool, inflight []int64) {
	now := time.Now()
	healthy = make([]bool, len(rt.breakers))
	for i, bk := range rt.breakers {
		healthy[i] = bk.allow(now)
	}
	rt.mu.Lock()
	inflight = append([]int64(nil), rt.inflight...)
	rt.mu.Unlock()
	return
}

// healthyBackends returns the indexes of backends whose breakers currently
// admit traffic.
func (rt *Router) healthyBackends() []int {
	now := time.Now()
	var out []int
	for i, bk := range rt.breakers {
		if bk.allow(now) {
			out = append(out, i)
		}
	}
	return out
}

// forward sends one request to one backend, tracking in-flight load and
// feeding the backend's breaker with the outcome. A nil error means an HTTP
// response was received (whatever its status); the caller owns resp.Body.
func (rt *Router) forward(ctx context.Context, b int, method, path string, body []byte, contentType string) (*http.Response, error) {
	rt.mu.Lock()
	rt.inflight[b]++
	rt.routed[b]++
	rt.mu.Unlock()
	defer func() {
		rt.mu.Lock()
		rt.inflight[b]--
		rt.mu.Unlock()
	}()
	req, err := http.NewRequestWithContext(ctx, method, rt.cfg.Backends[b]+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := rt.client.Do(req)
	if err == nil {
		if f := faultinject.At("router.forward"); f != nil {
			if ferr := f.Apply(); ferr != nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				resp, err = nil, ferr
			}
		}
	}
	switch {
	case err == nil:
		rt.breakers[b].onSuccess()
	case ctx.Err() != nil:
		// The client went away (or the deadline fired); that says nothing
		// about the backend's health, so don't charge its breaker.
	default:
		rt.breakers[b].onFailure(time.Now())
	}
	return resp, err
}

// forwardByKey places a keyed request on the ring and retries clockwise
// across replicas on transport failures. A failed backend is excluded for
// the rest of this request even if its breaker has not tripped yet — the
// breaker decides fleet-wide ejection, the local exclusion keeps one
// request from hammering the same dying replica.
func (rt *Router) forwardByKey(ctx context.Context, key, method, path string, body []byte, contentType string) (*http.Response, int, error) {
	healthy, inflight := rt.snapshot()
	var lastErr error
	for attempt := 0; attempt < len(rt.cfg.Backends); attempt++ {
		b := rt.ring.pick(key, healthy, inflight, rt.cfg.LoadFactor)
		if b == -1 {
			break
		}
		resp, err := rt.forward(ctx, b, method, path, body, contentType)
		if err == nil {
			return resp, b, nil
		}
		lastErr = err
		healthy[b] = false
		rt.mu.Lock()
		rt.retries++
		rt.mu.Unlock()
	}
	if lastErr == nil {
		lastErr = errors.New("no healthy backend")
	}
	return nil, -1, lastErr
}

// copyResponse proxies a backend response through unchanged.
func copyResponse(w http.ResponseWriter, resp *http.Response) {
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// splitDeployID resolves a namespaced deployment ID ("b2.d-000017") to its
// backend index and backend-local ID.
func (rt *Router) splitDeployID(id string) (int, string, bool) {
	name, local, ok := strings.Cut(id, ".")
	if !ok {
		return 0, "", false
	}
	for i, n := range rt.names {
		if n == name {
			return i, local, true
		}
	}
	return 0, "", false
}

func (rt *Router) prefixID(b int, local string) string {
	return rt.names[b] + "." + local
}

// handleUpload replicates a module to every healthy backend so the ring can
// later place its deployments on any of them. Uploads are idempotent by
// content, so replication is safe to repeat; the client sees success when
// at least one replica accepted (stragglers pick the module up from the
// shared cache volume or a re-upload).
func (rt *Router) handleUpload(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, rt.cfg.MaxModuleBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	if int64(len(body)) > rt.cfg.MaxModuleBytes {
		writeError(w, http.StatusRequestEntityTooLarge, "module exceeds %d bytes", rt.cfg.MaxModuleBytes)
		return
	}
	targets := rt.healthyBackends()
	if len(targets) == 0 {
		writeError(w, http.StatusBadGateway, "no healthy backend")
		return
	}
	rt.mu.Lock()
	rt.fanouts++
	rt.mu.Unlock()
	type result struct {
		b    int
		resp *http.Response
		err  error
	}
	results := make([]result, len(targets))
	var wg sync.WaitGroup
	for i, b := range targets {
		wg.Add(1)
		go func(i, b int) {
			defer wg.Done()
			resp, err := rt.forward(r.Context(), b, http.MethodPost, "/v1/modules", body, "application/octet-stream")
			results[i] = result{b: b, resp: resp, err: err}
		}(i, b)
	}
	wg.Wait()
	var winner, fallback *http.Response
	for _, res := range results {
		switch {
		case res.err != nil:
			// forward already fed the breaker; nothing to merge.
		case res.resp.StatusCode == http.StatusCreated && winner == nil:
			winner = res.resp
		case fallback == nil:
			fallback = res.resp
		}
	}
	for _, res := range results {
		if res.resp != nil && res.resp != winner && res.resp != fallback {
			io.Copy(io.Discard, res.resp.Body)
			res.resp.Body.Close()
		}
	}
	resp := winner
	if resp == nil {
		resp = fallback
	}
	if resp == nil {
		writeError(w, http.StatusBadGateway, "every backend failed the upload")
		return
	}
	defer resp.Body.Close()
	if fallback != nil && fallback != resp {
		io.Copy(io.Discard, fallback.Body)
		fallback.Body.Close()
	}
	copyResponse(w, resp)
}

// handleDeploy routes a batch by its module hash: the ring concentrates one
// module's deployments on one replica so its JIT image is compiled once.
// The full request is decoded (not just the module) so the router can
// remember, per deployment, how to re-create it on another replica if its
// backend later dies mid-run.
func (rt *Router) handleDeploy(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	var req DeployRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	resp, b, err := rt.forwardByKey(r.Context(), req.Module, http.MethodPost, "/v1/deploy", body, "application/json")
	if err != nil {
		writeError(w, http.StatusBadGateway, "deploy: %v", err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		copyResponse(w, resp)
		return
	}
	var dr DeployResponse
	if err := json.NewDecoder(resp.Body).Decode(&dr); err != nil {
		writeError(w, http.StatusBadGateway, "decoding backend response: %v", err)
		return
	}
	rt.mu.Lock()
	for i := range dr.Deployments {
		nsID := rt.prefixID(b, dr.Deployments[i].ID)
		rt.meta[nsID] = deployMeta{
			backend: b,
			module:  req.Module,
			target:  dr.Deployments[i].Target,
			req:     req,
		}
		dr.Deployments[i].ID = nsID
	}
	rt.mu.Unlock()
	writeJSON(w, http.StatusCreated, dr)
}

// handleRun forwards an invocation to the backend named by the deployment
// ID. On a transport failure the router fails over: the machine is
// re-deployed from its recorded recipe on the next healthy replica and the
// run retried there, bounded by RunDeadline.
func (rt *Router) handleRun(w http.ResponseWriter, r *http.Request) {
	id := rt.resolveAlias(r.PathValue("id"))
	if _, _, ok := rt.splitDeployID(id); !ok {
		writeError(w, http.StatusNotFound, "unknown deployment %q", r.PathValue("id"))
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	ctx, cancel := rt.runDeadline(r.Context())
	defer cancel()
	resp, err := rt.runWithFailover(ctx, id, body)
	if err != nil {
		writeJSON(w, http.StatusBadGateway, errorBody{
			Error:     err.Error(),
			Class:     errClassUnavailable,
			Retryable: true,
		})
		return
	}
	defer resp.Body.Close()
	copyResponse(w, resp)
}

// handleProfile forwards a profile export, restoring the namespaced ID in
// the response. Failed-over deployments are followed to their replacement.
func (rt *Router) handleProfile(w http.ResponseWriter, r *http.Request) {
	b, local, ok := rt.splitDeployID(rt.resolveAlias(r.PathValue("id")))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown deployment %q", r.PathValue("id"))
		return
	}
	resp, err := rt.forward(r.Context(), b, http.MethodGet, "/v1/deployments/"+local+"/profile", nil, "")
	if err != nil {
		writeError(w, http.StatusBadGateway, "backend %s: %v", rt.names[b], err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		copyResponse(w, resp)
		return
	}
	var pr ProfileResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		writeError(w, http.StatusBadGateway, "decoding backend response: %v", err)
		return
	}
	pr.ID = rt.prefixID(b, pr.ID)
	writeJSON(w, http.StatusOK, pr)
}

// handleRunBatch splits a batch across the fleet: an explicit deployment
// list is grouped by backend, a module selector fans out to every healthy
// replica (deployments of one module can overflow onto several under
// bounded load). Results keep request order; per-machine errors stay
// per-result, as on a single backend — including transport failures, which
// are retried item by item through run failover instead of failing the
// whole batch.
func (rt *Router) handleRunBatch(w http.ResponseWriter, r *http.Request) {
	var req RunBatchRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if req.Entry == "" {
		writeError(w, http.StatusBadRequest, "missing entry point name")
		return
	}
	if (len(req.Deployments) == 0) == (req.Module == "") {
		writeError(w, http.StatusBadRequest, "set exactly one of deployments or module")
		return
	}
	rt.mu.Lock()
	rt.fanouts++
	rt.mu.Unlock()
	ctx, cancel := rt.runDeadline(r.Context())
	defer cancel()

	type shard struct {
		b       int
		req     RunBatchRequest
		ids     []string // namespaced ids, parallel to req.Deployments
		slots   []int    // result index per entry (explicit-list mode)
		resp    RunBatchResponse
		status  int
		errBody errorBody
		err     error
	}
	var shards []*shard
	if req.Module != "" {
		for _, b := range rt.healthyBackends() {
			shards = append(shards, &shard{b: b, req: RunBatchRequest{Module: req.Module, Entry: req.Entry, Args: req.Args}})
		}
		if len(shards) == 0 {
			writeError(w, http.StatusBadGateway, "no healthy backend")
			return
		}
	} else {
		byBackend := map[int]*shard{}
		for i, id := range req.Deployments {
			nsID := rt.resolveAlias(id)
			b, local, ok := rt.splitDeployID(nsID)
			if !ok {
				writeError(w, http.StatusNotFound, "unknown deployment %q", id)
				return
			}
			sh := byBackend[b]
			if sh == nil {
				sh = &shard{b: b, req: RunBatchRequest{Entry: req.Entry, Args: req.Args}}
				byBackend[b] = sh
				shards = append(shards, sh)
			}
			sh.req.Deployments = append(sh.req.Deployments, local)
			sh.ids = append(sh.ids, nsID)
			sh.slots = append(sh.slots, i)
		}
	}

	var wg sync.WaitGroup
	for _, sh := range shards {
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			body, err := json.Marshal(sh.req)
			if err != nil {
				sh.err = err
				return
			}
			resp, err := rt.forward(ctx, sh.b, http.MethodPost, "/v1/run-batch", body, "application/json")
			if err != nil {
				sh.err = err
				return
			}
			defer resp.Body.Close()
			sh.status = resp.StatusCode
			if resp.StatusCode == http.StatusOK {
				sh.err = json.NewDecoder(resp.Body).Decode(&sh.resp)
			} else {
				_ = json.NewDecoder(resp.Body).Decode(&sh.errBody)
			}
		}(sh)
	}
	wg.Wait()

	if req.Module != "" {
		// Merge module-wide shards; replicas without machines for the module
		// answer 404 and drop out. A shard whose backend died is recovered
		// item by item: the router knows which of its deployments lived
		// there and fails each over to a surviving replica.
		var out RunBatchResponse
		sawFleet := false
		for _, sh := range shards {
			if sh.err != nil {
				ids := rt.metaIDsOn(req.Module, sh.b)
				for _, nsID := range ids {
					out.Results = append(out.Results, rt.failoverBatchItem(ctx, nsID, req.Entry, req.Args))
					sawFleet = true
				}
				continue
			}
			if sh.status == http.StatusNotFound {
				continue
			}
			if sh.status != http.StatusOK {
				writeJSON(w, sh.status, sh.errBody)
				return
			}
			sawFleet = true
			for _, res := range sh.resp.Results {
				res.Deployment = rt.prefixID(sh.b, res.Deployment)
				out.Results = append(out.Results, res)
			}
		}
		if !sawFleet {
			writeError(w, http.StatusNotFound, "module %q has no live deployments", req.Module)
			return
		}
		writeJSON(w, http.StatusOK, out)
		return
	}

	out := RunBatchResponse{Results: make([]RunBatchResult, len(req.Deployments))}
	for _, sh := range shards {
		if sh.err != nil {
			// The shard's backend died; recover each of its items through
			// run failover rather than failing the whole batch.
			for j, nsID := range sh.ids {
				out.Results[sh.slots[j]] = rt.failoverBatchItem(ctx, nsID, req.Entry, req.Args)
			}
			continue
		}
		if sh.status != http.StatusOK {
			writeJSON(w, sh.status, sh.errBody)
			return
		}
		if len(sh.resp.Results) != len(sh.slots) {
			writeError(w, http.StatusBadGateway, "backend %s returned %d results for %d runs", rt.names[sh.b], len(sh.resp.Results), len(sh.slots))
			return
		}
		for j, res := range sh.resp.Results {
			res.Deployment = rt.prefixID(sh.b, res.Deployment)
			out.Results[sh.slots[j]] = res
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// handleListModules merges the module registries of every healthy backend,
// deduplicated by content hash (uploads are replicated, so every replica
// normally lists the same set).
func (rt *Router) handleListModules(w http.ResponseWriter, r *http.Request) {
	merged := make(map[string]ModuleInfo)
	var order []string
	for _, b := range rt.healthyBackends() {
		resp, err := rt.forward(r.Context(), b, http.MethodGet, "/v1/modules", nil, "")
		if err != nil {
			continue
		}
		var body struct {
			Modules []ModuleInfo `json:"modules"`
		}
		err = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if err != nil {
			continue
		}
		for _, m := range body.Modules {
			if _, ok := merged[m.ID]; !ok {
				merged[m.ID] = m
				order = append(order, m.ID)
			}
		}
	}
	out := make([]ModuleInfo, 0, len(order))
	for _, id := range order {
		out = append(out, merged[id])
	}
	writeJSON(w, http.StatusOK, map[string]any{"modules": out})
}

// handleListDeployments concatenates every healthy backend's deployments,
// IDs namespaced.
func (rt *Router) handleListDeployments(w http.ResponseWriter, r *http.Request) {
	var out DeployResponse
	for _, b := range rt.healthyBackends() {
		resp, err := rt.forward(r.Context(), b, http.MethodGet, "/v1/deployments", nil, "")
		if err != nil {
			continue
		}
		var dr DeployResponse
		err = json.NewDecoder(resp.Body).Decode(&dr)
		resp.Body.Close()
		if err != nil {
			continue
		}
		for _, d := range dr.Deployments {
			d.ID = rt.prefixID(b, d.ID)
			out.Deployments = append(out.Deployments, d)
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// RouterBackendStats describes one backend as the router sees it.
type RouterBackendStats struct {
	Name string `json:"name"`
	URL  string `json:"url"`
	// Healthy is true while the circuit breaker is closed; Breaker is the
	// breaker state by name ("closed", "open", "half-open").
	Healthy bool   `json:"healthy"`
	Breaker string `json:"breaker"`
	// ConsecutiveFailures is the breaker's current failure streak;
	// BreakerOpens counts how often the breaker has tripped.
	ConsecutiveFailures int   `json:"consecutive_failures"`
	BreakerOpens        int64 `json:"breaker_opens"`
	// Routed counts requests this router sent to the backend; Inflight is
	// the bounded-load vector's current entry.
	Routed   int64 `json:"routed"`
	Inflight int64 `json:"inflight"`
}

// RouterStats is the router's own /v1/stats section.
type RouterStats struct {
	Backends []RouterBackendStats `json:"backends"`
	// Retries counts transport failures that moved a request to the next
	// replica clockwise; Fanouts counts requests replicated or sharded to
	// multiple backends (uploads, run-batch).
	Retries int64 `json:"retries"`
	Fanouts int64 `json:"fanouts"`
	// Failovers counts runs recovered onto another replica after a backend
	// died; FailoverRedeploys counts the re-deployments that took (one
	// failover can redeploy on several candidates before one answers);
	// FailoverFailed counts runs that exhausted their deadline without
	// finding a survivor.
	Failovers         int64 `json:"failovers"`
	FailoverRedeploys int64 `json:"failover_redeploys"`
	FailoverFailed    int64 `json:"failover_failed"`
}

// RouterStatsResponse is the router's /v1/stats payload: its own routing
// counters plus each healthy backend's full StatsResponse, keyed by
// backend name.
type RouterStatsResponse struct {
	Router   RouterStats              `json:"router"`
	Backends map[string]StatsResponse `json:"backends"`
}

// Stats snapshots the router's routing counters.
func (rt *Router) Stats() RouterStats {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	st := RouterStats{
		Retries:           rt.retries,
		Fanouts:           rt.fanouts,
		Failovers:         rt.failovers,
		FailoverRedeploys: rt.failoverRedeploys,
		FailoverFailed:    rt.failoverFailed,
	}
	for i, base := range rt.cfg.Backends {
		state, fails, opens := rt.breakers[i].snapshot()
		st.Backends = append(st.Backends, RouterBackendStats{
			Name:                rt.names[i],
			URL:                 base,
			Healthy:             state == breakerClosed,
			Breaker:             state.String(),
			ConsecutiveFailures: fails,
			BreakerOpens:        opens,
			Routed:              rt.routed[i],
			Inflight:            rt.inflight[i],
		})
	}
	return st
}

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	out := RouterStatsResponse{Backends: make(map[string]StatsResponse)}
	for _, b := range rt.healthyBackends() {
		resp, err := rt.forward(r.Context(), b, http.MethodGet, "/v1/stats", nil, "")
		if err != nil {
			continue
		}
		var st StatsResponse
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			continue
		}
		out.Backends[rt.names[b]] = st
	}
	out.Router = rt.Stats()
	writeJSON(w, http.StatusOK, out)
}

// handleHealthz reports the router healthy while at least one backend is.
func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	n := len(rt.healthyBackends())
	status := http.StatusOK
	state := "ok"
	if n == 0 {
		status = http.StatusServiceUnavailable
		state = "no healthy backend"
	}
	writeJSON(w, status, map[string]any{"status": state, "healthy_backends": n, "backends": len(rt.cfg.Backends)})
}
