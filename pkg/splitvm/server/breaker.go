package server

import (
	"sync"
	"time"
)

// breakerState is one backend's circuit-breaker position.
type breakerState int

// The breaker's three states: Closed passes traffic; Open blocks it until
// the cooldown elapses; HalfOpen admits traffic as probes — enough
// consecutive successes close the breaker, any failure re-opens it.
const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// String returns the state's wire name ("closed", "open", "half-open").
func (st breakerState) String() string {
	switch st {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breakerConfig sets one breaker's thresholds.
type breakerConfig struct {
	// failures is how many consecutive failures open the breaker.
	failures int
	// successes is how many consecutive half-open successes close it.
	successes int
	// cooldown is how long an open breaker blocks before probing.
	cooldown time.Duration
}

// breaker is one backend's circuit breaker, replacing the old binary
// healthy/dead flag with hysteresis: a single failed probe or request no
// longer ejects a backend (and a single success no longer readmits a dead
// one), so flapping backends shed load gradually instead of oscillating in
// and out of the ring. Probes and real traffic feed the same breaker.
type breaker struct {
	cfg breakerConfig

	mu          sync.Mutex
	state       breakerState
	consecFails int
	consecOKs   int
	openedAt    time.Time
	opens       int64
}

func newBreaker(cfg breakerConfig) *breaker {
	if cfg.failures <= 0 {
		cfg.failures = 3
	}
	if cfg.successes <= 0 {
		cfg.successes = 2
	}
	if cfg.cooldown <= 0 {
		cfg.cooldown = 5 * time.Second
	}
	return &breaker{cfg: cfg}
}

// allow reports whether traffic may be sent through the breaker at time
// now. An open breaker whose cooldown has elapsed transitions to half-open
// and admits the request as a probe.
func (bk *breaker) allow(now time.Time) bool {
	bk.mu.Lock()
	defer bk.mu.Unlock()
	if bk.state == breakerOpen {
		if now.Sub(bk.openedAt) < bk.cfg.cooldown {
			return false
		}
		bk.state = breakerHalfOpen
		bk.consecOKs = 0
	}
	return true
}

// onSuccess records a successful probe or request.
func (bk *breaker) onSuccess() {
	bk.mu.Lock()
	defer bk.mu.Unlock()
	bk.consecFails = 0
	if bk.state == breakerHalfOpen {
		bk.consecOKs++
		if bk.consecOKs >= bk.cfg.successes {
			bk.state = breakerClosed
		}
	}
	// A success while open (a request admitted before the breaker tripped)
	// does not close it: readmission goes through half-open probing.
}

// onFailure records a failed probe or request at time now.
func (bk *breaker) onFailure(now time.Time) {
	bk.mu.Lock()
	defer bk.mu.Unlock()
	bk.consecOKs = 0
	switch bk.state {
	case breakerClosed:
		bk.consecFails++
		if bk.consecFails >= bk.cfg.failures {
			bk.trip(now)
		}
	case breakerHalfOpen:
		// The probe failed; back to blocking for another cooldown.
		bk.trip(now)
	case breakerOpen:
		// Stragglers from before the trip; nothing to update.
	}
}

// trip opens the breaker. Caller holds bk.mu.
func (bk *breaker) trip(now time.Time) {
	bk.state = breakerOpen
	bk.openedAt = now
	bk.consecFails = 0
	bk.opens++
}

// snapshot returns the state, consecutive-failure count and total opens.
func (bk *breaker) snapshot() (breakerState, int, int64) {
	bk.mu.Lock()
	defer bk.mu.Unlock()
	return bk.state, bk.consecFails, bk.opens
}
