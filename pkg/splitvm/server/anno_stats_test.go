package server

import (
	"net/http"
	"testing"

	"repro/internal/anno"
	"repro/internal/anno/envelope"
	"repro/internal/cil"
)

// futureStream compiles the test module and rewrites its regalloc
// annotation to declare schema version 99 — an upload from a newer offline
// toolchain than this server understands.
func futureStream(t *testing.T) []byte {
	t.Helper()
	mod, err := cil.Decode(encodeModule(t, sumsqSource))
	if err != nil {
		t.Fatal(err)
	}
	m := mod.Method("sumsq")
	data, ok := m.Annotation(anno.KeyRegAlloc)
	if !ok {
		t.Fatal("compiled module carries no regalloc annotation")
	}
	m.SetAnnotation(anno.KeyRegAlloc, envelope.Encode(&envelope.Envelope{Sections: []envelope.Section{
		{Name: "regalloc", Version: 99, Payload: data},
	}}))
	return cil.Encode(mod)
}

// TestStatsCountsAnnotationFallbacks walks the server lifecycle with a
// module from the future: upload succeeds, deployments succeed (degrading
// to online-only register allocation), runs produce correct results, and
// the fallback compilations surface in /v1/stats and per deployment.
func TestStatsCountsAnnotationFallbacks(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := upload(t, ts, futureStream(t))

	resp := postJSON(t, ts.URL+"/v1/deploy", DeployRequest{
		Module:  id,
		Targets: []string{"x86-sse", "mcu"},
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("deploy: status %d", resp.StatusCode)
	}
	dr := decodeJSON[DeployResponse](t, resp.Body)
	if len(dr.Deployments) != 2 {
		t.Fatalf("got %d deployments, want 2", len(dr.Deployments))
	}
	for _, d := range dr.Deployments {
		if d.AnnotationFallbacks < 1 {
			t.Errorf("deployment on %s: annotation_fallbacks = %d, want >= 1", d.Target, d.AnnotationFallbacks)
		}
	}

	runResp := postJSON(t, ts.URL+"/v1/deployments/"+dr.Deployments[0].ID+"/run", RunRequest{
		Entry: "sumsq",
		Args:  []string{"10"},
	})
	defer runResp.Body.Close()
	if runResp.StatusCode != http.StatusOK {
		t.Fatalf("run: status %d", runResp.StatusCode)
	}
	rr := decodeJSON[RunResponse](t, runResp.Body)
	if rr.Value != 385 { // 1^2 + ... + 10^2
		t.Errorf("sumsq(10) = %d, want 385", rr.Value)
	}

	statsResp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp.Body.Close()
	st := decodeJSON[StatsResponse](t, statsResp.Body)
	if st.Compile.Compilations != 2 {
		t.Errorf("compile.compilations = %d, want 2", st.Compile.Compilations)
	}
	if st.Compile.FallbackCompilations != 2 {
		t.Errorf("compile.fallback_compilations = %d, want 2", st.Compile.FallbackCompilations)
	}
}
