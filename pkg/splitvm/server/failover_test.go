package server

import (
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/pkg/splitvm"
)

// startBackendAt serves srv on addr ("127.0.0.1:0" for any port) so a test
// can kill a backend and later resurrect it on the same address.
func startBackendAt(t *testing.T, srv *Server, addr string) *httptest.Server {
	t.Helper()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("listen %s: %v", addr, err)
	}
	ts := httptest.NewUnstartedServer(srv)
	ts.Listener.Close()
	ts.Listener = ln
	ts.Start()
	return ts
}

// TestRouterBreakerHysteresis pins the probe hysteresis: one failed probe
// must not eject a backend (N consecutive failures do), and one successful
// probe must not readmit it (cooldown + N consecutive successes do).
func TestRouterBreakerHysteresis(t *testing.T) {
	srv0 := New(splitvm.New(), Config{})
	defer srv0.Close()
	b0 := startBackendAt(t, srv0, "127.0.0.1:0")
	addr := b0.Listener.Addr().String()
	srv1 := New(splitvm.New(), Config{})
	b1 := httptest.NewServer(srv1)
	defer func() { b1.Close(); srv1.Close() }()

	rt, err := NewRouter(RouterConfig{
		Backends:         []string{"http://" + addr, b1.URL},
		HealthInterval:   -1,
		BreakerFailures:  2,
		BreakerSuccesses: 2,
		BreakerCooldown:  20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	// Kill b0 the hard way and probe: the first failure must not eject it.
	b0.CloseClientConnections()
	b0.Close()
	rt.probeAll()
	if st := rt.Stats(); !st.Backends[0].Healthy || st.Backends[0].ConsecutiveFailures != 1 {
		t.Fatalf("one failed probe ejected the backend: %+v", st.Backends[0])
	}
	rt.probeAll()
	if st := rt.Stats(); st.Backends[0].Healthy || st.Backends[0].Breaker != "open" {
		t.Fatalf("two failed probes did not open the breaker: %+v", st.Backends[0])
	}

	// Resurrect b0 on the same address. One successful probe (the half-open
	// one after the cooldown) must not readmit it; the second one does.
	b0 = startBackendAt(t, srv0, addr)
	defer b0.Close()
	time.Sleep(30 * time.Millisecond)
	rt.probeAll()
	if st := rt.Stats(); st.Backends[0].Healthy {
		t.Fatalf("one successful probe readmitted the backend: %+v", st.Backends[0])
	}
	rt.probeAll()
	st := rt.Stats()
	if !st.Backends[0].Healthy || st.Backends[0].Breaker != "closed" {
		t.Fatalf("backend not readmitted after cooldown + 2 good probes: %+v", st.Backends[0])
	}
}

// TestRouterRunFailover is the tentpole behavior: a backend dying mid-run
// must not fail the request — the router re-deploys the machine on a
// surviving replica and retries there, and the original deployment id keeps
// working afterwards via the alias.
func TestRouterRunFailover(t *testing.T) {
	rt, front, backends := newTestFleet(t, 2, Config{})
	id := upload(t, front, encodeModule(t, sumsqSource))

	resp := postJSON(t, front.URL+"/v1/deploy", DeployRequest{Module: id, Targets: []string{"mcu"}})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("deploy: status %d", resp.StatusCode)
	}
	dr := decodeJSON[DeployResponse](t, resp.Body)
	resp.Body.Close()
	depID := dr.Deployments[0].ID
	owner := rt.ring.owner(id)
	if want := "b" + string(rune('0'+owner)) + "."; !strings.HasPrefix(depID, want) {
		t.Fatalf("deployment %s not on ring owner %d", depID, owner)
	}

	backends[owner].CloseClientConnections()
	backends[owner].Close()

	resp = postJSON(t, front.URL+"/v1/deployments/"+depID+"/run", RunRequest{Entry: "sumsq", Args: []string{"12"}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run after backend death: status %d, want 200 via failover", resp.StatusCode)
	}
	rr := decodeJSON[RunResponse](t, resp.Body)
	resp.Body.Close()
	if rr.Value != 650 {
		t.Errorf("failover run value = %d, want 650", rr.Value)
	}
	st := rt.Stats()
	if st.Failovers != 1 || st.FailoverRedeploys != 1 || st.FailoverFailed != 0 {
		t.Fatalf("failover counters = %+v", st)
	}

	// The original id now aliases the replacement on the survivor: a second
	// run must hit it directly, with no additional failover.
	resp = postJSON(t, front.URL+"/v1/deployments/"+depID+"/run", RunRequest{Entry: "sumsq", Args: []string{"3"}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-failover run: status %d", resp.StatusCode)
	}
	rr = decodeJSON[RunResponse](t, resp.Body)
	resp.Body.Close()
	if rr.Value != 14 {
		t.Errorf("post-failover run value = %d, want 14", rr.Value)
	}
	if st := rt.Stats(); st.Failovers != 1 {
		t.Errorf("aliased run triggered another failover: %+v", st)
	}
}

// TestRouterBatchFailover: a batch whose shard's backend dies recovers item
// by item instead of failing the whole batch.
func TestRouterBatchFailover(t *testing.T) {
	rt, front, backends := newTestFleet(t, 2, Config{})
	id := upload(t, front, encodeModule(t, sumsqSource))

	resp := postJSON(t, front.URL+"/v1/deploy", DeployRequest{Module: id, Targets: []string{"mcu"}, Replicas: 2})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("deploy: status %d", resp.StatusCode)
	}
	dr := decodeJSON[DeployResponse](t, resp.Body)
	resp.Body.Close()
	if len(dr.Deployments) != 2 {
		t.Fatalf("%d deployments, want 2", len(dr.Deployments))
	}
	ids := []string{dr.Deployments[0].ID, dr.Deployments[1].ID}

	owner := rt.ring.owner(id)
	backends[owner].CloseClientConnections()
	backends[owner].Close()

	resp = postJSON(t, front.URL+"/v1/run-batch", RunBatchRequest{Deployments: ids, Entry: "sumsq", Args: []string{"10"}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch after backend death: status %d, want 200", resp.StatusCode)
	}
	out := decodeJSON[RunBatchResponse](t, resp.Body)
	resp.Body.Close()
	if len(out.Results) != 2 {
		t.Fatalf("%d results, want 2", len(out.Results))
	}
	for i, res := range out.Results {
		if res.Error != "" || res.Value != 385 {
			t.Errorf("result %d = %+v, want value 385 via failover", i, res)
		}
	}
	if st := rt.Stats(); st.Failovers == 0 {
		t.Error("batch recovery counted no failovers")
	}
}

// TestRouterBatchPreservesErrorClasses pins that the router's fan-out merge
// keeps the backends' structured per-item errors intact.
func TestRouterBatchPreservesErrorClasses(t *testing.T) {
	_, front, _ := newTestFleet(t, 2, Config{})
	id := upload(t, front, encodeModule(t, sumsqSource))
	resp := postJSON(t, front.URL+"/v1/deploy", DeployRequest{Module: id, Targets: []string{"mcu"}})
	dr := decodeJSON[DeployResponse](t, resp.Body)
	resp.Body.Close()
	depID := dr.Deployments[0].ID

	cases := []struct {
		name      string
		req       RunBatchRequest
		wantClass string
	}{
		{"unknown entry", RunBatchRequest{Deployments: []string{depID}, Entry: "nope"}, errClassNotFound},
		{"bad args", RunBatchRequest{Deployments: []string{depID}, Entry: "sumsq", Args: []string{"zap"}}, errClassBadRequest},
	}
	for _, tc := range cases {
		resp := postJSON(t, front.URL+"/v1/run-batch", tc.req)
		out := decodeJSON[RunBatchResponse](t, resp.Body)
		resp.Body.Close()
		if len(out.Results) != 1 {
			t.Fatalf("%s: %d results", tc.name, len(out.Results))
		}
		if got := out.Results[0]; got.ErrorClass != tc.wantClass || got.Error == "" {
			t.Errorf("%s: class %q (%q), want %q through the router merge", tc.name, got.ErrorClass, got.Error, tc.wantClass)
		}
	}
}
