package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
	"time"
)

// postJSONTenant is postJSON with an X-Tenant header.
func postJSONTenant(t *testing.T, url, tenant string, req any) *http.Response {
	t.Helper()
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set("X-Tenant", tenant)
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestModuleQuota(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxDeploymentsPerModule: 3})
	id := upload(t, ts, encodeModule(t, sumsqSource))

	resp := postJSON(t, ts.URL+"/v1/deploy", DeployRequest{Module: id, Targets: []string{"x86-sse"}, Replicas: 2})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("first batch: status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// 2 live + 2 more would exceed the cap of 3 — whole batch refused.
	resp = postJSON(t, ts.URL+"/v1/deploy", DeployRequest{Module: id, Targets: []string{"x86-sse"}, Replicas: 2})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota batch: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("quota rejection carries no Retry-After hint")
	}
	resp.Body.Close()

	// 2 + 1 fits exactly.
	resp = postJSON(t, ts.URL+"/v1/deploy", DeployRequest{Module: id, Targets: []string{"mcu"}})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("fitting batch: status %d, want 201", resp.StatusCode)
	}
	resp.Body.Close()

	st := getStats(t, ts)
	if st.QuotaRejected != 1 || st.Deployments != 3 {
		t.Errorf("stats = %d quota rejections / %d deployments, want 1 / 3", st.QuotaRejected, st.Deployments)
	}
	// Quota rejections are not queue-saturation rejections.
	if st.Rejected != 0 {
		t.Errorf("rejected = %d, want 0", st.Rejected)
	}
}

func TestTenantQuotaIsPerTenant(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxDeploymentsPerTenant: 2})
	id := upload(t, ts, encodeModule(t, sumsqSource))

	for _, tenant := range []string{"alice", "bob"} {
		resp := postJSONTenant(t, ts.URL+"/v1/deploy", tenant, DeployRequest{Module: id, Targets: []string{"x86-sse"}, Replicas: 2})
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("tenant %s: status %d", tenant, resp.StatusCode)
		}
		resp.Body.Close()
	}
	// alice is full; bob being full too must not mask whose quota tripped.
	resp := postJSONTenant(t, ts.URL+"/v1/deploy", "alice", DeployRequest{Module: id, Targets: []string{"mcu"}})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("alice over quota: status %d, want 429", resp.StatusCode)
	}
	body := decodeJSON[errorBody](t, resp.Body)
	resp.Body.Close()
	if want := `tenant "alice"`; !bytes.Contains([]byte(body.Error), []byte(want)) {
		t.Errorf("error %q does not name the tenant", body.Error)
	}
	// A third tenant is unaffected.
	resp = postJSONTenant(t, ts.URL+"/v1/deploy", "carol", DeployRequest{Module: id, Targets: []string{"mcu"}})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("carol: status %d, want 201", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestQuotaFreedBySweeper(t *testing.T) {
	srv, ts := newTestServer(t, Config{MaxDeploymentsPerModule: 1})
	id := upload(t, ts, encodeModule(t, sumsqSource))

	resp := postJSON(t, ts.URL+"/v1/deploy", DeployRequest{Module: id, Targets: []string{"x86-sse"}})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("deploy: status %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp = postJSON(t, ts.URL+"/v1/deploy", DeployRequest{Module: id, Targets: []string{"mcu"}})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second deploy: status %d, want 429", resp.StatusCode)
	}
	resp.Body.Close()

	// Evicting the idle machine frees its quota slot.
	if n := srv.evictIdle(time.Now().Add(time.Minute)); n != 1 {
		t.Fatalf("evicted %d deployments, want 1", n)
	}
	resp = postJSON(t, ts.URL+"/v1/deploy", DeployRequest{Module: id, Targets: []string{"mcu"}})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("deploy after eviction: status %d, want 201", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestRunBatch(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := upload(t, ts, encodeModule(t, sumsqSource))

	resp := postJSON(t, ts.URL+"/v1/deploy", DeployRequest{
		Module: id, Targets: []string{"x86-sse", "mcu"}, Replicas: 2,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("deploy: status %d", resp.StatusCode)
	}
	dr := decodeJSON[DeployResponse](t, resp.Body)
	resp.Body.Close()
	if len(dr.Deployments) != 4 {
		t.Fatalf("%d deployments, want 4", len(dr.Deployments))
	}

	// By module: every live deployment computes the same answer.
	resp = postJSON(t, ts.URL+"/v1/run-batch", RunBatchRequest{
		Module: id, Entry: "sumsq", Args: []string{"100"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run-batch by module: status %d", resp.StatusCode)
	}
	br := decodeJSON[RunBatchResponse](t, resp.Body)
	resp.Body.Close()
	if len(br.Results) != 4 {
		t.Fatalf("%d results, want 4", len(br.Results))
	}
	for _, r := range br.Results {
		if r.Error != "" || r.Value != 338350 {
			t.Errorf("deployment %s on %s: value %d, error %q", r.Deployment, r.Target, r.Value, r.Error)
		}
		if r.Cycles <= 0 {
			t.Errorf("deployment %s: cycles %d, want > 0", r.Deployment, r.Cycles)
		}
	}

	// Explicit list preserves request order.
	want := []string{dr.Deployments[2].ID, dr.Deployments[0].ID}
	resp = postJSON(t, ts.URL+"/v1/run-batch", RunBatchRequest{
		Deployments: want, Entry: "sumsq", Args: []string{"10"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run-batch by id: status %d", resp.StatusCode)
	}
	br = decodeJSON[RunBatchResponse](t, resp.Body)
	resp.Body.Close()
	for i, r := range br.Results {
		if r.Deployment != want[i] {
			t.Errorf("result %d is %s, want %s", i, r.Deployment, want[i])
		}
		if r.Value != 385 {
			t.Errorf("result %d value = %d, want 385", i, r.Value)
		}
	}
}

func TestRunBatchValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := upload(t, ts, encodeModule(t, sumsqSource))
	resp := postJSON(t, ts.URL+"/v1/deploy", DeployRequest{Module: id, Targets: []string{"x86-sse"}})
	dr := decodeJSON[DeployResponse](t, resp.Body)
	resp.Body.Close()
	depID := dr.Deployments[0].ID

	cases := []struct {
		name string
		req  RunBatchRequest
		want int
	}{
		{"no entry", RunBatchRequest{Module: id}, http.StatusBadRequest},
		{"neither selector", RunBatchRequest{Entry: "sumsq"}, http.StatusBadRequest},
		{"both selectors", RunBatchRequest{Module: id, Deployments: []string{depID}, Entry: "sumsq"}, http.StatusBadRequest},
		{"unknown deployment", RunBatchRequest{Deployments: []string{"d-999999"}, Entry: "sumsq"}, http.StatusNotFound},
		{"module without fleet", RunBatchRequest{Module: "nope", Entry: "sumsq"}, http.StatusNotFound},
	}
	for _, tc := range cases {
		resp := postJSON(t, ts.URL+"/v1/run-batch", tc.req)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
		resp.Body.Close()
	}

	// A bad entry point inside an otherwise valid batch is a per-result
	// error, not a request failure.
	resp = postJSON(t, ts.URL+"/v1/run-batch", RunBatchRequest{Deployments: []string{depID}, Entry: "missing"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("per-result error case: status %d, want 200", resp.StatusCode)
	}
	br := decodeJSON[RunBatchResponse](t, resp.Body)
	resp.Body.Close()
	if len(br.Results) != 1 || br.Results[0].Error == "" {
		t.Errorf("results = %+v, want one entry with an error", br.Results)
	}
}

func TestStatsLatencyHistograms(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	st := getStats(t, ts)
	if len(st.Latency) != 0 {
		t.Errorf("latency families before traffic = %v, want none", st.Latency)
	}

	id := upload(t, ts, encodeModule(t, sumsqSource))
	resp := postJSON(t, ts.URL+"/v1/deploy", DeployRequest{Module: id, Targets: []string{"x86-sse"}})
	dr := decodeJSON[DeployResponse](t, resp.Body)
	resp.Body.Close()
	for i := 0; i < 3; i++ {
		resp = postJSON(t, ts.URL+"/v1/deployments/"+dr.Deployments[0].ID+"/run",
			RunRequest{Entry: "sumsq", Args: []string{"50"}})
		resp.Body.Close()
	}
	resp = postJSON(t, ts.URL+"/v1/run-batch", RunBatchRequest{Module: id, Entry: "sumsq", Args: []string{"5"}})
	resp.Body.Close()

	st = getStats(t, ts)
	wantCounts := map[string]int64{"upload": 1, "deploy": 1, "run": 3, "run_batch": 1}
	for route, n := range wantCounts {
		s, ok := st.Latency[route]
		if !ok {
			t.Errorf("latency family %q missing", route)
			continue
		}
		if s.Count != n {
			t.Errorf("%s count = %d, want %d", route, s.Count, n)
		}
		if s.P50Nanos <= 0 || s.P95Nanos < s.P50Nanos || s.P99Nanos < s.P95Nanos || s.MaxNanos < s.P99Nanos {
			t.Errorf("%s percentiles not monotone: %+v", route, s)
		}
	}
}

func TestLatencyRecorderPercentiles(t *testing.T) {
	var rec latencyRecorder
	for i := 1; i <= 100; i++ {
		rec.observe(time.Duration(i) * time.Millisecond)
	}
	s := rec.summary()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if got := time.Duration(s.P50Nanos); got != 50*time.Millisecond {
		t.Errorf("p50 = %v, want 50ms", got)
	}
	if got := time.Duration(s.P95Nanos); got != 95*time.Millisecond {
		t.Errorf("p95 = %v, want 95ms", got)
	}
	if got := time.Duration(s.P99Nanos); got != 99*time.Millisecond {
		t.Errorf("p99 = %v, want 99ms", got)
	}
	if got := time.Duration(s.MaxNanos); got != 100*time.Millisecond {
		t.Errorf("max = %v, want 100ms", got)
	}
	if got := time.Duration(s.MeanNanos); got != 50500*time.Microsecond {
		t.Errorf("mean = %v, want 50.5ms", got)
	}

	// The window slides: after many large samples the early small ones no
	// longer drag the percentiles down, but the lifetime count keeps growing.
	for i := 0; i < maxLatencySamples; i++ {
		rec.observe(time.Second)
	}
	s = rec.summary()
	if s.Count != 100+maxLatencySamples {
		t.Errorf("count = %d", s.Count)
	}
	if got := time.Duration(s.P50Nanos); got != time.Second {
		t.Errorf("p50 after window rollover = %v, want 1s", got)
	}
}
