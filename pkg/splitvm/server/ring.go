package server

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// Consistent-hash ring with bounded load, the router's placement policy.
// Each backend owns vnodes points on a 64-bit circle; a key is served by the
// first point clockwise of its hash. Virtual nodes smooth the load split,
// and consistency is the property the cache depends on: adding or removing
// one backend remaps only the keys in the arcs it gains or loses (~1/N of
// the space), so the other replicas' disk and memory caches stay warm.
//
// The bounded-load refinement (Mirrokni et al.) caps how far a hot key can
// pile onto one backend: a candidate already carrying more than
// loadFactor × the fair share of in-flight work is skipped and the walk
// continues clockwise. The skip is deterministic for a given load vector,
// and an unloaded ring always uses the pure consistent-hash owner.

// ringVNodes is the number of points each backend owns (enough that a
// 2–10 backend ring splits the space within a few percent of even).
const ringVNodes = 64

type ringPoint struct {
	hash    uint64
	backend int // index into the router's backend list
}

type hashRing struct {
	points   []ringPoint
	backends int
}

// ringHash positions a string on the circle. SHA-256 (truncated) rather
// than a fast non-cryptographic hash: placement must not be correlated with
// the structure of module hashes, which are themselves SHA-256 hex.
func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// newHashRing builds the ring over n backends (identified by index; the
// caller owns the index→address mapping).
func newHashRing(n int) *hashRing {
	r := &hashRing{backends: n}
	for b := 0; b < n; b++ {
		for v := 0; v < ringVNodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:    ringHash(fmt.Sprintf("backend-%d/vnode-%d", b, v)),
				backend: b,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// owner returns the pure consistent-hash owner of a key: the backend of the
// first point clockwise of the key's hash.
func (r *hashRing) owner(key string) int {
	return r.points[r.search(ringHash(key))].backend
}

func (r *hashRing) search(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// walk returns the distinct backends in clockwise preference order starting
// from the key's owner. The first entry is the consistent-hash owner; the
// rest are the retry/overflow order — the same for every request with this
// key, so overflow traffic is itself consistent.
func (r *hashRing) walk(key string) []int {
	out := make([]int, 0, r.backends)
	seen := make([]bool, r.backends)
	start := r.search(ringHash(key))
	for i := 0; i < len(r.points) && len(out) < r.backends; i++ {
		b := r.points[(start+i)%len(r.points)].backend
		if !seen[b] {
			seen[b] = true
			out = append(out, b)
		}
	}
	return out
}

// pick chooses the backend for a key under the bounded-load rule: walk
// clockwise from the owner, skipping unhealthy backends and backends whose
// in-flight count already exceeds loadFactor × the fair share. If every
// healthy backend is over the bound (a burst), the walk falls back to the
// least-loaded healthy backend; if none is healthy, it returns -1.
//
// healthy and inflight are indexed by backend; total is the sum of inflight.
func (r *hashRing) pick(key string, healthy []bool, inflight []int64, loadFactor float64) int {
	var total int64
	nHealthy := 0
	for b := 0; b < r.backends; b++ {
		total += inflight[b]
		if healthy[b] {
			nHealthy++
		}
	}
	if nHealthy == 0 {
		return -1
	}
	// Fair share of in-flight work including the request being placed,
	// scaled by the load factor and rounded up (ceil keeps the bound ≥ 1 so
	// an idle ring never skips its owner).
	bound := int64(loadFactor * float64(total+1) / float64(nHealthy))
	if bound < 1 {
		bound = 1
	}
	fallback := -1
	for _, b := range r.walk(key) {
		if !healthy[b] {
			continue
		}
		if inflight[b]+1 <= bound {
			return b
		}
		if fallback == -1 || inflight[b] < inflight[fallback] {
			fallback = b
		}
	}
	return fallback
}
