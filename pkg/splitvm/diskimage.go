package splitvm

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"fmt"

	"repro/internal/anno"
	"repro/internal/core"
	"repro/internal/diskcache"
	"repro/internal/jit"
	"repro/internal/nisa"
	"repro/internal/target"
)

// The persistent half of the code cache. With WithDiskCache(dir) an engine
// spills every completed JIT compilation to a content-addressed on-disk
// store (internal/diskcache) keyed by the same (module sha256, target
// descriptor, JIT options) identity as the in-memory LRU. A later engine —
// after a restart, or a replica sharing the cache volume — resolves a miss
// against the disk first and only compiles when both layers miss, so warm
// restarts deploy with FromCache == true and zero compilations.
//
// The disk layer is strictly behind the LRU: a disk hit is promoted into
// memory and shared exactly like a freshly compiled image, and an LRU
// eviction demotes to disk (entries whose write-through already landed are
// simply dropped from memory — the disk copy is the durable one). Disk
// contents are advisory by the same "degrade, don't fail" policy as
// annotations: corrupt, truncated or schema-incompatible entries fall back
// to recompilation, never surface as deployment errors.

// diskFormat versions the serialized image payload; bumping it orphans old
// entries (they fail to decode and are recompiled — never an error).
const diskFormat = "svdc-img-v1"

// diskImage is the serialized form of one cached compilation: everything an
// Image carries except the module (the caller always has the decoded,
// verified module — it is the thing being deployed) and the target
// descriptor (part of the cache key).
type diskImage struct {
	Format              string
	TargetName          string
	Program             *nisa.Program
	JITSteps            int64
	CompileNanos        int64
	AnnotationOutcomes  []anno.MethodOutcome
	AnnotationFallbacks int
}

// DiskCacheStats reports the persistent cache layer's traffic (see
// CacheStats.Disk).
type DiskCacheStats = diskcache.Stats

// diskName derives the content address of one cache key: a hex SHA-256 over
// the module hash, the full target descriptor (every machine parameter —
// resized register files never share entries, mirroring the in-memory key)
// and the JIT options, salted with the payload format version so a schema
// bump starts a fresh namespace instead of mass-invalidating reads.
func diskName(key cacheKey) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s|%x|%#v|%d|%t|%d|%t", diskFormat,
		key.hash, key.desc, key.regAlloc, key.forceScalarize, key.minAnnoVersion, key.lazy)
	return hex.EncodeToString(h.Sum(nil))
}

// diskMethodFormat versions the per-method payload the lazy layer persists
// (one entry per first-call compilation, fleet-wide).
const diskMethodFormat = "svdc-mth-v1"

// diskMethod is the serialized form of one lazily compiled method.
type diskMethod struct {
	Format       string
	Name         string
	Func         *nisa.Func
	CompileNanos int64
}

// methodStore adapts the engine's disk store to the core.MethodStore
// interface for one cache key: every replica mounting the same volume and
// deploying the same (module, target, options) resolves its first calls
// against the same per-method entries, so each method JIT-compiles at most
// once fleet-wide. Same durability contract as whole images: writes are
// best-effort, corrupt entries degrade to recompilation.
type methodStore struct {
	disk *diskcache.Store
	// base is the cache key's content address; method entries are addressed
	// under it so two modules sharing a method name never collide.
	base string
}

func (e *Engine) methodStore(key cacheKey) core.MethodStore {
	return &methodStore{disk: e.disk, base: diskName(key)}
}

func (s *methodStore) entryName(method string) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s|%s|%s", diskMethodFormat, s.base, method)
	return hex.EncodeToString(h.Sum(nil))
}

func (s *methodStore) GetMethod(name string) (*core.CompiledMethod, bool) {
	payload, ok := s.disk.Get(s.entryName(name))
	if !ok {
		return nil, false
	}
	var dm diskMethod
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&dm); err != nil {
		return nil, false
	}
	if dm.Format != diskMethodFormat || dm.Name != name || dm.Func == nil {
		return nil, false
	}
	return &core.CompiledMethod{Func: dm.Func, CompileNanos: dm.CompileNanos}, true
}

func (s *methodStore) PutMethod(name string, cm *core.CompiledMethod) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(&diskMethod{
		Format:       diskMethodFormat,
		Name:         name,
		Func:         cm.Func,
		CompileNanos: cm.CompileNanos,
	})
	if err != nil {
		return
	}
	s.disk.Put(s.entryName(name), buf.Bytes())
}

// loadFromDisk resolves a cache key against the disk store and
// reconstitutes the image around the caller's decoded module (tgt is the
// stable descriptor pointer the image must reference; jopts is recorded on
// it so tiering can re-run the same pipeline). A miss or any decode/sanity
// failure returns false — the caller compiles.
func (e *Engine) loadFromDisk(key cacheKey, tgt *target.Desc, jopts jit.Options, m *Module) (*core.Image, bool) {
	payload, ok := e.disk.Get(diskName(key))
	if !ok {
		return nil, false
	}
	var di diskImage
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&di); err != nil {
		return nil, false
	}
	if di.Format != diskFormat || di.Program == nil || di.TargetName != key.desc.Name {
		return nil, false
	}
	// The program must cover the module being deployed: a content collision
	// is cryptographically improbable, but a half-written index entry is
	// not, and a missing function would otherwise surface at Run time.
	for _, meth := range m.mod.Methods {
		if di.Program.Func(meth.Name) == nil {
			return nil, false
		}
	}
	return &core.Image{
		Target:              tgt,
		Module:              m.mod,
		Program:             di.Program,
		JITOpts:             jopts,
		JITSteps:            di.JITSteps,
		CompileNanos:        di.CompileNanos,
		AnnotationOutcomes:  di.AnnotationOutcomes,
		AnnotationFallbacks: di.AnnotationFallbacks,
	}, true
}

// persistImage spills one completed compilation to the disk store
// (best-effort: filesystem failures degrade to memory-only caching) and
// reports whether the entry is durably present afterwards.
func (e *Engine) persistImage(key cacheKey, img *core.Image) bool {
	name := diskName(key)
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(&diskImage{
		Format:              diskFormat,
		TargetName:          img.Target.Name,
		Program:             img.Program,
		JITSteps:            img.JITSteps,
		CompileNanos:        img.CompileNanos,
		AnnotationOutcomes:  img.AnnotationOutcomes,
		AnnotationFallbacks: img.AnnotationFallbacks,
	})
	if err != nil {
		return false
	}
	e.disk.Put(name, buf.Bytes())
	return e.disk.Has(name)
}
