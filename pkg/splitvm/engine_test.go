package splitvm

import (
	"context"
	"strings"
	"testing"

	"repro/internal/target"
)

const sumsqSource = `
i64 sumsq(i32 n) {
    i64 s = 0;
    for (i32 i = 1; i <= n; i++) {
        s = s + (i64) (i * i);
    }
    return s;
}
`

func TestCompileDeployRoundTrip(t *testing.T) {
	eng := New()
	m, err := eng.Compile(sumsqSource, WithModuleName("rt"))
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "rt" || m.Stats().EncodedBytes == 0 || m.Stats().AnnotationBytes == 0 {
		t.Fatalf("module looks wrong: name=%q stats=%+v", m.Name(), m.Stats())
	}
	if got := m.Methods(); len(got) != 1 || got[0] != "sumsq" {
		t.Fatalf("Methods = %v", got)
	}
	want, err := m.Interpret("sumsq", IntArg(100))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range target.All() {
		dep, err := eng.Deploy(m, WithTarget(d.Arch))
		if err != nil {
			t.Fatalf("deploy on %s: %v", d.Arch, err)
		}
		got, err := dep.Run("sumsq", IntArg(100))
		if err != nil {
			t.Fatalf("run on %s: %v", d.Arch, err)
		}
		if got.I != want.Value.I {
			t.Errorf("sumsq(100) on %s = %d, interpreter %d", d.Arch, got.I, want.Value.I)
		}
		if dep.Cycles() == 0 || dep.NativeCodeBytes() == 0 || dep.JITSteps() == 0 {
			t.Errorf("%s: missing statistics", d.Arch)
		}
	}
}

func TestLoadDeploysLikeCompile(t *testing.T) {
	eng := New()
	m, err := eng.Compile(sumsqSource)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := eng.Load(m.Encoded())
	if err != nil {
		t.Fatal(err)
	}
	dep1, err := eng.Deploy(m)
	if err != nil {
		t.Fatal(err)
	}
	dep2, err := eng.Deploy(loaded)
	if err != nil {
		t.Fatal(err)
	}
	a, err := dep1.Run("sumsq", IntArg(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := dep2.Run("sumsq", IntArg(42))
	if err != nil {
		t.Fatal(err)
	}
	if a.I != b.I {
		t.Errorf("compiled %d != loaded %d", a.I, b.I)
	}
	// Same content hash: the second deployment should have hit the cache.
	if !dep2.FromCache() {
		t.Error("Load-ed module with identical bytes should share cached native code")
	}
	if _, err := eng.Load([]byte("junk")); err == nil {
		t.Error("Load accepted junk bytes")
	}
}

func TestEngineDefaultsAndOverrides(t *testing.T) {
	// Engine-wide default: MCU target, online allocator.
	eng := New(WithTarget(target.MCU), WithRegAllocMode(RegAllocOnline))
	m, err := eng.Compile(sumsqSource)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := eng.Deploy(m)
	if err != nil {
		t.Fatal(err)
	}
	if dep.Target().Arch != target.MCU {
		t.Errorf("engine default target ignored: %s", dep.Target().Arch)
	}
	// Per-call override wins.
	dep, err = eng.Deploy(m, WithTarget(target.SPU))
	if err != nil {
		t.Fatal(err)
	}
	if dep.Target().Arch != target.SPU {
		t.Errorf("per-call target ignored: %s", dep.Target().Arch)
	}
	if _, err := eng.Deploy(m, WithTarget("z80")); err == nil || !strings.Contains(err.Error(), "unknown architecture") {
		t.Errorf("unknown target accepted: %v", err)
	}
}

func TestVectorizeAndAnnotationOptions(t *testing.T) {
	eng := New()
	vec, k, err := eng.CompileKernel("vecadd_fp")
	if err != nil {
		t.Fatal(err)
	}
	if k.Entry != "vecadd" || vec.Name() != "vecadd_fp" {
		t.Errorf("kernel metadata wrong: %q %q", k.Entry, vec.Name())
	}
	if vec.Stats().VectorizedLoops == 0 {
		t.Error("vectorizer should strip-mine vecadd")
	}
	scalar, _, err := eng.CompileKernel("vecadd_fp", WithVectorize(false))
	if err != nil {
		t.Fatal(err)
	}
	if scalar.Stats().VectorizedLoops != 0 {
		t.Error("WithVectorize(false) left vector plans")
	}
	depVec, err := eng.Deploy(vec) // x86 default
	if err != nil {
		t.Fatal(err)
	}
	if !depVec.UsedSIMD("vecadd") {
		t.Error("x86 deployment of vectorized bytecode should use the SIMD unit")
	}
	depForced, err := eng.Deploy(vec, WithForceScalarize(true))
	if err != nil {
		t.Fatal(err)
	}
	if depForced.UsedSIMD("vecadd") {
		t.Error("WithForceScalarize must prevent SIMD lowering")
	}
	stripped, _, err := eng.CompileKernel("vecadd_fp", WithAnnotations(false))
	if err != nil {
		t.Fatal(err)
	}
	if stripped.Stats().AnnotationBytes != 0 {
		t.Error("WithAnnotations(false) left annotations")
	}
	if _, err := eng.Compile("i32 broken("); err == nil {
		t.Error("syntax errors must propagate")
	}
	if _, _, err := eng.CompileKernel("nope"); err == nil {
		t.Error("unknown kernels must be rejected")
	}
}

func TestSignatureAndParseArgs(t *testing.T) {
	eng := New()
	m, err := eng.Compile(`f64 mix(i32 a, f64 x) { return (f64) a * x; }`)
	if err != nil {
		t.Fatal(err)
	}
	sig, err := m.Signature("mix")
	if err != nil {
		t.Fatal(err)
	}
	if !sig.ReturnsFloat || len(sig.Params) != 2 || sig.Params[0].Float || !sig.Params[1].Float {
		t.Fatalf("signature wrong: %+v", sig)
	}
	args, err := sig.ParseArgs([]string{"3", "1.5"})
	if err != nil {
		t.Fatal(err)
	}
	if args[0].I != 3 || args[1].F != 1.5 {
		t.Fatalf("parsed args wrong: %+v", args)
	}
	if args, err := sig.ParseArgs([]string{"3", "2"}); err != nil || args[1].F != 2 {
		t.Errorf("integer literal for a float parameter should parse: %v %+v", err, args)
	}
	if _, err := sig.ParseArgs([]string{"3"}); err == nil {
		t.Error("arity mismatch accepted")
	}
	if _, err := sig.ParseArgs([]string{"x", "1.5"}); err == nil {
		t.Error("bad literal accepted")
	}
	if _, err := sig.ParseArgs([]string{"3.5", "1.5"}); err == nil {
		t.Error("float literal for an integer parameter must error, not truncate to 0")
	}
	if _, err := m.Signature("missing"); err == nil {
		t.Error("unknown method accepted")
	}

	dep, err := eng.Deploy(m)
	if err != nil {
		t.Fatal(err)
	}
	dsig, err := dep.Signature("mix")
	if err != nil {
		t.Fatal(err)
	}
	got, err := dep.Run("mix", args...)
	if err != nil {
		t.Fatal(err)
	}
	if !dsig.ReturnsFloat || got.F != 4.5 {
		t.Errorf("mix(3, 1.5) = %v, want 4.5", got.F)
	}
}

func TestContextCancellation(t *testing.T) {
	eng := New()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.CompileContext(ctx, sumsqSource); err == nil {
		t.Error("CompileContext ignored a cancelled context")
	}
	m, err := eng.Compile(sumsqSource)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.DeployContext(ctx, m); err == nil {
		t.Error("DeployContext ignored a cancelled context")
	}
}

func TestWithTargetDescResizedRegisterFile(t *testing.T) {
	eng := New()
	m, err := eng.Compile(sumsqSource)
	if err != nil {
		t.Fatal(err)
	}
	small := target.MustLookup(target.MCU).WithIntRegs(2)
	dep, err := eng.Deploy(m, WithTargetDesc(small), WithRegAllocMode(RegAllocOnline))
	if err != nil {
		t.Fatal(err)
	}
	slots, _, _ := dep.SpillSummary()
	if slots == 0 {
		t.Error("2-register deployment should spill")
	}
	// The resized descriptor must not share cache entries with the stock MCU.
	stock, err := eng.Deploy(m, WithTarget(target.MCU), WithRegAllocMode(RegAllocOnline))
	if err != nil {
		t.Fatal(err)
	}
	if stock.FromCache() {
		t.Error("stock MCU deployment shared the resized target's native code")
	}
	stockSlots, _, _ := stock.SpillSummary()
	if stockSlots >= slots && slots > 0 && stockSlots != 0 {
		t.Logf("note: stock MCU spills %d, resized %d", stockSlots, slots)
	}
}

func TestDeployHeteroSharesCache(t *testing.T) {
	eng := New()
	m, err := eng.Compile(sumsqSource)
	if err != nil {
		t.Fatal(err)
	}
	sys := CellLike() // one PPC host + two identical SPU accelerators
	rt, err := eng.DeployHetero(sys, m, Annotated)
	if err != nil {
		t.Fatal(err)
	}
	st := eng.CacheStats()
	// Two distinct core types -> two JIT compilations; the second SPU joins
	// the first SPU's image.
	if st.Misses != 2 || st.Hits != 1 || st.Entries != 2 {
		t.Errorf("cache stats after Cell deployment = %+v, want 2 misses, 1 hit, 2 entries", st)
	}
	res, err := rt.Call("sumsq", ScalarArg(I32, IntArg(10)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Result.I != 385 {
		t.Errorf("sumsq(10) via hetero runtime = %d, want 385", res.Result.I)
	}
}

func TestDeployHeteroHonorsEngineOptions(t *testing.T) {
	eng := New()
	m, k, err := eng.CompileKernel("vecadd_fp")
	if err != nil {
		t.Fatal(err)
	}
	plain, err := eng.DeployHetero(CellLike(), m, Annotated)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Deployment("spu0").Program.Func(k.Entry).Stats.VectorLowered == 0 {
		t.Fatal("SPU deployment should normally use the vector unit")
	}
	forced, err := eng.DeployHetero(CellLike(), m, Annotated, WithForceScalarize(true))
	if err != nil {
		t.Fatal(err)
	}
	if forced.Deployment("spu0").Program.Func(k.Entry).Stats.VectorLowered != 0 {
		t.Error("WithForceScalarize was ignored by DeployHetero")
	}
	if _, err := eng.DeployHetero(CellLike(), nil, Annotated); err == nil {
		t.Error("DeployHetero accepted a nil module")
	}
}

func TestCachedImageIsImmuneToDescriptorMutation(t *testing.T) {
	eng := New()
	m, err := eng.Compile(sumsqSource)
	if err != nil {
		t.Fatal(err)
	}
	d := target.MustLookup(target.MCU).WithIntRegs(6)
	dep1, err := eng.Deploy(m, WithTargetDesc(d))
	if err != nil {
		t.Fatal(err)
	}
	d.IntRegs = 2 // caller mutates its descriptor after deploying
	dep2, err := eng.Deploy(m, WithTargetDesc(target.MustLookup(target.MCU).WithIntRegs(6)))
	if err != nil {
		t.Fatal(err)
	}
	if !dep2.FromCache() {
		t.Fatal("value-equal descriptor should hit the cache")
	}
	if dep1.Target().IntRegs != 6 || dep2.Target().IntRegs != 6 {
		t.Errorf("cached deployments see the mutation: %d and %d int regs, want 6",
			dep1.Target().IntRegs, dep2.Target().IntRegs)
	}
	if v, err := dep2.Run("sumsq", IntArg(10)); err != nil || v.I != 385 {
		t.Errorf("cached deployment broken after mutation: %v %v", v.I, err)
	}
}

func TestCacheControls(t *testing.T) {
	eng := New()
	m, err := eng.Compile(sumsqSource)
	if err != nil {
		t.Fatal(err)
	}
	d1, err := eng.Deploy(m)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := eng.Deploy(m)
	if err != nil {
		t.Fatal(err)
	}
	if d1.FromCache() || !d2.FromCache() {
		t.Errorf("expected miss then hit, got %v then %v", d1.FromCache(), d2.FromCache())
	}
	d3, err := eng.Deploy(m, WithCache(false))
	if err != nil {
		t.Fatal(err)
	}
	if d3.FromCache() {
		t.Error("WithCache(false) must bypass the cache")
	}
	st := eng.CacheStats()
	if st.Entries != 1 || st.Hits != 1 || st.Misses != 1 {
		t.Errorf("cache stats = %+v, want 1 entry, 1 hit, 1 miss", st)
	}
	eng.ClearCache()
	if eng.CacheStats().Entries != 0 {
		t.Error("ClearCache left entries")
	}
	d4, err := eng.Deploy(m)
	if err != nil {
		t.Fatal(err)
	}
	if d4.FromCache() {
		t.Error("deployment after ClearCache cannot be a hit")
	}
}

func TestInterpretRejectsArrays(t *testing.T) {
	eng := New()
	m, _, err := eng.CompileKernel("sum_u8")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Interpret("sum_u8", IntArg(1), IntArg(2)); err == nil {
		t.Error("array argument accepted by Interpret")
	}
}
