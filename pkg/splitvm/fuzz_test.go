package splitvm

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// FuzzModulePipeline feeds mutated byte streams through the full untrusted
// path — decode, verify, deploy, run — under a small resource governor. The
// corpus is seeded from the checked-in annotation corpus (real encoded
// modules across every schema version), so mutations explore the decoder
// from valid streams outward. The invariants are the trust boundary's:
// no panic ever escapes to the caller, and a stream that loads and deploys
// can only consume what the governor grants — hostile lengths and runaway
// loops come back as typed errors, never as unbounded allocation.
func FuzzModulePipeline(f *testing.F) {
	dir := filepath.Join("..", "..", "internal", "anno", "testdata", "annocorpus")
	entries, err := os.ReadDir(dir)
	if err != nil {
		f.Fatal(err)
	}
	seeded := 0
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".svbc") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		seeded++
	}
	if seeded == 0 {
		f.Fatal("no corpus seeds found")
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		eng := New()
		m, err := eng.Load(data)
		if err != nil {
			return // rejected at the boundary, as hostile input should be
		}
		dep, err := eng.Deploy(m, WithMemLimit(1<<20), WithCache(false))
		if err != nil {
			return
		}
		// Small budgets: whatever survived verification runs governed.
		dep.d.Machine.MaxSteps = 2_000_000
		for _, entry := range m.Methods() {
			sig, err := dep.Signature(entry)
			if err != nil {
				continue
			}
			raw := make([]string, len(sig.Params))
			for i := range raw {
				raw[i] = "7"
			}
			args, err := sig.ParseArgs(raw)
			if err != nil {
				continue // array parameters are not runnable from text
			}
			if _, err := dep.Run(entry, args...); err != nil {
				// Errors are fine — they must just be errors, not panics,
				// and a guest panic recovered by the firewall quarantines
				// the machine without poisoning later entries.
				var pe *PanicError
				if errors.As(err, &pe) && !dep.d.Quarantined() {
					t.Fatalf("recovered panic without quarantine: %v", err)
				}
			} else if used, limit := dep.MemUsed(), dep.MemLimit(); used > limit {
				// A successful run can never have charged past the limit
				// (a failed one may be over by the growth that tripped it).
				t.Fatalf("guest charged %d bytes past its %d-byte limit", used, limit)
			}
		}
	})
}
