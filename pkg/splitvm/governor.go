package splitvm

// The resource governor on the public surface. Deployed modules are a trust
// boundary — a hostile or buggy byte stream must never take down the engine
// — so a deployment can be governed per machine: a guest memory limit
// (WithMemLimit / SPLITVM_MEM_LIMIT), a wall-clock run deadline
// (WithRunDeadline), and the instruction budget the machine always had. A
// breach surfaces as a typed *ResourceError; a panic escaping dispatch is
// recovered by the core's panic firewall into a *PanicError, the machine is
// quarantined and transparently rebuilt from its cached image on the next
// run (counted on GuardStats). Like tiering, the governor is per machine
// and deliberately not part of the code-cache key: a governed run inside
// its limits executes the exact instruction and cycle sequence of an
// ungoverned one, so governed and ungoverned deployments share images.

import (
	"os"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
)

// ResourceError is the typed error a governed run returns when it exceeds
// one of its limits: instruction budget (ResourceCycles), guest memory
// (ResourceMem) or wall-clock deadline (ResourceDeadline). It is a
// deterministic property of the module and its limits, so servers map it to
// a non-retryable resource_exhausted class instead of a generic execution
// failure. Detect it with errors.As.
type ResourceError = sim.ResourceError

// ResourceKind names which limit a ResourceError reports.
type ResourceKind = sim.ResourceKind

// The governed resources (see ResourceError).
const (
	// ResourceCycles is the instruction budget.
	ResourceCycles = sim.ResourceCycles
	// ResourceMem is the guest memory limit.
	ResourceMem = sim.ResourceMem
	// ResourceDeadline is the wall-clock run deadline.
	ResourceDeadline = sim.ResourceDeadline
)

// PanicError is a guest panic recovered by the panic firewall at the run
// boundary: the run failed, the machine was quarantined, and the next run
// transparently gets a machine rebuilt from the deployment's image.
type PanicError = core.PanicError

// GuardStats counts a deployment's panic-firewall activity: quarantines
// (runs that ended in a recovered panic) and rebuilds (machines
// re-instantiated from their image afterwards). Host-side bookkeeping, like
// TierStats — none of it feeds simulated statistics.
type GuardStats = core.GuardStats

// WithMemLimit bounds the guest memory a deployment's machine may consume —
// the simulated heap plus the pooled frame and argument buffers grown on
// the guest's behalf — in bytes; a breach fails the run with a
// *ResourceError of kind ResourceMem, checked before the offending
// allocation so a hostile array length never reaches the host allocator.
// 0 (the default) leaves guest memory ungoverned. The limit is per machine
// and deliberately not part of the code-cache key: accounting never
// perturbs results or simulated cycles, so governed and ungoverned
// deployments share images. SPLITVM_MEM_LIMIT sets the process-wide
// default, like SPLITVM_TIER does for tiering.
func WithMemLimit(bytes int64) DeployOption {
	return deployOption(func(c *config) {
		if bytes < 0 {
			bytes = 0
		}
		c.memLimit = bytes
	})
}

// WithRunDeadline bounds the wall-clock time of each run on the deployment:
// the run context is derived with this timeout and the machine aborts on
// its cancellation stride, failing the run with a *ResourceError of kind
// ResourceDeadline (a deadline or cancellation the caller's own context
// carried still reports as a cancellation). 0 (the default) leaves runs
// unbounded. Per machine, never part of the cache key; a run that finishes
// inside its deadline is instruction- and cycle-identical to an unbounded
// one.
func WithRunDeadline(d time.Duration) DeployOption {
	return deployOption(func(c *config) {
		if d < 0 {
			d = 0
		}
		c.runDeadline = d
	})
}

// envMemLimit is the SPLITVM_MEM_LIMIT override, read once per process: a
// decimal byte count applied as the default guest memory limit of every
// deployment, like SPLITVM_TIER does for tiering. CI uses it to prove the
// governor's accounting never moves a gated metric. Unparsable values are
// ignored.
var envMemLimit = sync.OnceValue(func() int64 {
	v := os.Getenv("SPLITVM_MEM_LIMIT")
	if v == "" {
		return 0
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil || n < 0 {
		return 0
	}
	return n
})

// applyGovernor wires the resolved governor configuration onto a freshly
// instantiated deployment (the per-machine half that is not in the image).
func (c *config) applyGovernor(d *core.Deployment) {
	if c.memLimit > 0 {
		d.SetMemLimit(c.memLimit)
	}
	if c.runDeadline > 0 {
		d.RunDeadline = c.runDeadline
	}
}

// GuardStats returns a snapshot of the deployment's panic-firewall
// activity.
func (dp *Deployment) GuardStats() GuardStats { return dp.d.GuardStats() }

// MemUsed returns the guest memory charged to the deployment's machine so
// far: simulated heap bytes plus the pooled frame and argument buffers
// grown on the guest's behalf. Accounting is always on, so an ungoverned
// run reports the exact smallest WithMemLimit under which the same run
// still succeeds.
func (dp *Deployment) MemUsed() int64 { return dp.d.Machine.MemUsed() }

// MemLimit returns the deployment's guest memory limit (0 = ungoverned).
func (dp *Deployment) MemLimit() int64 { return dp.d.MemLimit() }

// RunDeadline returns the deployment's wall-clock per-run deadline (0 =
// unbounded).
func (dp *Deployment) RunDeadline() time.Duration { return dp.d.RunDeadline }
