package splitvm

import (
	"context"
	"fmt"

	"repro/internal/anno"
	"repro/internal/core"
	"repro/internal/target"
)

// Deployment is one module deployed on one simulated target: a JIT-compiled
// native image (possibly shared through the engine's code cache) plus a
// private machine executing it. The machine owns mutable state — memory and
// statistics — so a Deployment must not be used from multiple goroutines
// concurrently; deploy once per goroutine instead, which is cheap when the
// image is cached.
type Deployment struct {
	d         *core.Deployment
	fromCache bool
	fromDisk  bool
	// linked is set on DeployLinked deployments: the validated link set the
	// machine spans; per-method state queries then aggregate over its units.
	linked *core.Linked
}

// KernelRun is the result of running a benchmark kernel once on a
// deployment.
type KernelRun = core.KernelRun

// Target returns the deployment's target description.
func (dp *Deployment) Target() *target.Desc { return dp.d.Target }

// FromCache reports whether the native code came from the engine's code
// cache rather than a fresh JIT compilation.
func (dp *Deployment) FromCache() bool { return dp.fromCache }

// FromDisk reports whether the native code was materialized from the
// engine's persistent cache layer (a restart or a replica sharing the
// volume); every FromDisk deployment is also FromCache.
func (dp *Deployment) FromDisk() bool { return dp.fromDisk }

// Lazy reports whether this deployment compiles methods on their first call
// (WithLazyCompile) instead of having compiled everything at deploy time.
func (dp *Deployment) Lazy() bool {
	if dp.linked != nil {
		return dp.linked.Lazy()
	}
	return dp.d.Image != nil && dp.d.Image.Lazy()
}

// MethodState is one method's position in the lazy compilation lifecycle.
type MethodState = core.MethodState

// The lazy method states (see core.MethodState).
const (
	MethodStub      = core.MethodStub
	MethodCompiling = core.MethodCompiling
	MethodReady     = core.MethodReady
)

// MethodCompileState is one method's entry in a CompileState report.
type MethodCompileState = core.MethodCompileState

// CompileState reports the per-method compilation state of the deployment's
// image, shared by every deployment of that image: eager deployments report
// every method ready, lazy ones the live stub/compiling/ready table.
func (dp *Deployment) CompileState() map[string]MethodCompileState {
	if dp.linked != nil {
		return dp.linked.CompileState()
	}
	if dp.d.Image != nil {
		return dp.d.Image.CompileState()
	}
	out := make(map[string]MethodCompileState, len(dp.d.Module.Methods))
	for _, m := range dp.d.Module.Methods {
		out[m.Name] = MethodCompileState{State: core.MethodReady}
	}
	return out
}

// MethodCounts returns how many of the deployment's methods have native
// code and how many the module has in total. Eager deployments always
// report compiled == total; a fresh lazy deployment reports 0 compiled.
func (dp *Deployment) MethodCounts() (compiled, total int) {
	if dp.linked != nil {
		return dp.linked.MethodCounts()
	}
	if dp.d.Image != nil {
		return dp.d.Image.MethodCounts()
	}
	n := len(dp.d.Module.Methods)
	return n, n
}

// AnnotationOutcome is the negotiated status of one annotation of one
// method: the schema version it declared and whether it was consumed or
// fell back to online-only compilation.
type AnnotationOutcome = anno.MethodOutcome

// CompileReport describes the JIT compilation behind a deployment: how much
// online work it took and how the load-time annotation negotiation went.
type CompileReport struct {
	// Target is the deployment target's registry name.
	Target string `json:"target"`
	// FromCache reports whether the native code was reused from the
	// engine's code cache (the negotiation outcomes then describe the
	// original compilation).
	FromCache bool `json:"from_cache"`
	// JITSteps approximates the online compilation work.
	JITSteps int64 `json:"jit_steps"`
	// CompileNanos is the wall-clock time the JIT spent producing the
	// image (the original compilation's cost when FromCache is true).
	CompileNanos int64 `json:"compile_nanos"`
	// AnnotationOutcomes lists the negotiation result of every annotation
	// present in the module, per method.
	AnnotationOutcomes []AnnotationOutcome `json:"annotation_outcomes,omitempty"`
	// AnnotationFallbacks counts the sections that degraded to online-only
	// compilation (never an error: annotations are advisory).
	AnnotationFallbacks int `json:"annotation_fallbacks"`
	// Lazy reports whether the deployment compiles methods on first call.
	Lazy bool `json:"lazy,omitempty"`
	// MethodsCompiled/MethodsTotal are the image's per-method progress at
	// the moment the report was taken (equal on eager deployments).
	MethodsCompiled int `json:"methods_compiled"`
	MethodsTotal    int `json:"methods_total"`
}

// AnnotationFallbacks returns the number of annotation sections of this
// deployment's image that degraded to online-only compilation — the
// CompileReport headline without copying the per-method outcome list.
func (dp *Deployment) AnnotationFallbacks() int { return dp.d.AnnotationFallbacks }

// CompileReport returns the compilation report of this deployment's image.
// On lazy deployments the report is a live snapshot: CompileNanos and the
// method counts grow as first calls compile methods.
func (dp *Deployment) CompileReport() CompileReport {
	compiled, total := dp.MethodCounts()
	return CompileReport{
		Target:              dp.d.Target.Name,
		FromCache:           dp.fromCache,
		JITSteps:            dp.d.JITSteps,
		CompileNanos:        dp.CompileNanos(),
		AnnotationOutcomes:  append([]AnnotationOutcome(nil), dp.d.AnnotationOutcomes...),
		AnnotationFallbacks: dp.d.AnnotationFallbacks,
		Lazy:                dp.Lazy(),
		MethodsCompiled:     compiled,
		MethodsTotal:        total,
	}
}

// CompileNanos returns the wall-clock time the JIT spent producing this
// deployment's native code: the image compilation on eager deployments (the
// original compilation's cost when the image came from the code cache), the
// sum of the first-call method compilations so far on lazy ones.
func (dp *Deployment) CompileNanos() int64 {
	n := dp.d.CompileNanos
	if dp.linked != nil {
		return n + dp.linked.LazyCompileNanos()
	}
	if dp.d.Image != nil {
		n += dp.d.Image.LazyCompileNanos()
	}
	return n
}

// EnsureCompiled forces a lazy deployment fully compiled, as if every
// method (of every linked unit) had already taken its first call: each
// resolution is the usual singleflight JIT shared with every other
// deployment of the image, so warming one canary this way warms the whole
// fleet through the method store. Afterwards code-derived statistics
// (NativeCodeBytes, SpillSummary, SpillWeight, JITSteps) equal the eager
// deployment's. Eager deployments are a no-op; cancelling ctx aborts
// between methods, leaving the usual consistent partial state.
func (dp *Deployment) EnsureCompiled(ctx context.Context) error {
	return dp.d.EnsureCompiled(ctx)
}

// Run executes an entry point on the deployment's machine.
func (dp *Deployment) Run(entry string, args ...Value) (Value, error) {
	return dp.d.Run(entry, args...)
}

// RunContext executes an entry point like Run, aborting the simulation
// between instructions once ctx is cancelled — the error wraps ctx.Err(),
// so errors.Is(err, context.Canceled) detects a client disconnect.
// Uncancelled runs are instruction- and cycle-identical to Run.
func (dp *Deployment) RunContext(ctx context.Context, entry string, args ...Value) (Value, error) {
	return dp.d.RunContext(ctx, entry, args...)
}

// RunKernel marshals kernel inputs into the deployment's memory, runs the
// kernel entry point once and returns the result, the cycles it took and
// the output arrays. The inputs are cloned, not modified.
func (dp *Deployment) RunKernel(k Kernel, in *Inputs) (*KernelRun, error) {
	return dp.d.RunKernel(k, in)
}

// Signature returns the signature of a named method of the deployed module
// (any module of the set, on linked deployments).
func (dp *Deployment) Signature(entry string) (Signature, error) {
	if dp.linked != nil {
		for _, u := range dp.linked.Units {
			if meth := u.Image.Module.Method(entry); meth != nil {
				return signatureOf(meth), nil
			}
		}
		return Signature{}, fmt.Errorf("splitvm: no method %q in link set", entry)
	}
	meth := dp.d.Module.Method(entry)
	if meth == nil {
		return Signature{}, fmt.Errorf("splitvm: no method %q in module %s", entry, dp.d.Module.Name)
	}
	return signatureOf(meth), nil
}

// Cycles returns the cycles consumed so far by the deployment's machine.
func (dp *Deployment) Cycles() int64 { return dp.d.Cycles() }

// ResetCycles clears the machine's statistics (keeping its memory image).
func (dp *Deployment) ResetCycles() { dp.d.ResetCycles() }

// Stats returns a snapshot of the machine's execution statistics.
func (dp *Deployment) Stats() Stats { return dp.d.Machine.Stats }

// JITSteps approximates the work the online compiler performed for this
// deployment's image; with split compilation this stays small even when the
// generated code is aggressive.
func (dp *Deployment) JITSteps() int64 { return dp.d.JITSteps }

// SpillSummary sums the static spill statistics over all compiled
// functions: spilled variables, spill loads and spill stores.
func (dp *Deployment) SpillSummary() (slots, loads, stores int) { return dp.d.SpillSummary() }

// SpillWeight sums the estimated dynamic spill accesses (loop-depth
// weighted use counts of spilled variables) over all compiled functions.
func (dp *Deployment) SpillWeight() int64 { return dp.d.SpillWeight() }

// NativeCodeBytes estimates the native code size of the deployment.
func (dp *Deployment) NativeCodeBytes() int { return dp.d.NativeCodeBytes() }

// UsedSIMD reports whether the JIT mapped at least one portable vector
// builtin of the named method onto the target's vector unit (as opposed to
// scalarizing).
func (dp *Deployment) UsedSIMD(entry string) bool {
	f := dp.d.Program.Func(entry)
	return f != nil && f.Stats.VectorLowered > 0
}

// DisassembleNative renders the JIT-generated native code.
func (dp *Deployment) DisassembleNative() string { return dp.d.Program.Disassemble() }
