package splitvm

import (
	"context"
	"fmt"

	"repro/internal/cil"
	"repro/internal/core"
)

// Multi-module linking on the public surface. A program can be authored as
// several modules (CompileModules) whose cross-module calls are recorded as
// content-hash imports in the byte streams; Link validates a set of such
// modules into a LinkedModule and DeployLinked instantiates one machine
// spanning them. The contract mirrors the paper's distribution model: the
// byte stream crossing the boundary carries everything the device needs to
// verify and JIT in isolation, and cross-module references resolve
// module-by-content-hash at link time — a missing or mismatched dependency
// is a Link/Deploy error, never a first-call panic.

// ModuleSource names one source of a multi-module compilation.
type ModuleSource struct {
	// Name is the produced module's name (must be non-empty and unique in
	// the set).
	Name string
	// Source is the MiniC source text whose top-level functions the module
	// owns.
	Source string
}

// CompileModules compiles several MiniC sources as one program split into
// one module per source. The set is checked, optimized and lowered exactly
// like the concatenated single-module compilation — splitting never changes
// the generated code — and call sites that cross a source boundary become
// hash-qualified imports in the caller's byte stream. The results are
// ordered like the input and deploy together through Link + DeployLinked;
// each module is also individually loadable and hashable. Function names
// must be unique across the set, and cross-source call cycles between
// modules are an error (a module's content hash cannot include itself).
//
// WithProfile's compile-time half is not applied here: embedding a profile
// re-encodes a module, which would invalidate the content hashes its
// importers already carry. Deploy-time warm-up still works as usual.
func (e *Engine) CompileModules(sources []ModuleSource, opts ...CompileOption) ([]*Module, error) {
	if len(sources) == 0 {
		return nil, fmt.Errorf("splitvm: CompileModules needs at least one source")
	}
	cfg := e.compileConfig(opts)
	srcs := make([]string, len(sources))
	names := make([]string, len(sources))
	for i, s := range sources {
		if s.Name == "" {
			return nil, fmt.Errorf("splitvm: module %d has no name", i)
		}
		srcs[i], names[i] = s.Source, s.Name
	}
	ocfg := cfg.offlineOptions()
	ocfg.ModuleName = "" // per-part names come from the sources
	results, err := core.CompileOfflineModules(srcs, names, ocfg)
	if err != nil {
		return nil, err
	}
	out := make([]*Module, len(results))
	for i, res := range results {
		if out[i], err = newCompiledModule(res); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// LinkedModule is a validated set of modules whose cross-module imports all
// resolve inside the set: every import hash names a member, every imported
// method exists with the declared signature, and method names are globally
// unique. A LinkedModule is immutable and safe to deploy from many
// goroutines; the first module is the set's root (its name labels the
// deployment).
type LinkedModule struct {
	mods []*Module
}

// Link validates a set of compiled (or loaded) modules into a deployable
// LinkedModule. All structural link errors — a dependency missing from the
// set, an imported method the dependency does not define, a signature
// mismatch, duplicate method names — surface here, so DeployLinked can only
// fail for deploy-side reasons (target resolution, JIT errors).
func (e *Engine) Link(mods ...*Module) (*LinkedModule, error) {
	if len(mods) == 0 {
		return nil, fmt.Errorf("splitvm: Link needs at least one module")
	}
	byHash := make(map[[cil.HashSize]byte]*Module, len(mods))
	owner := make(map[string]*Module)
	for _, m := range mods {
		if m == nil {
			return nil, fmt.Errorf("splitvm: Link got a nil module (did Compile fail?)")
		}
		if _, dup := byHash[m.hash]; dup {
			return nil, fmt.Errorf("splitvm: module %q appears in the link set twice", m.mod.Name)
		}
		byHash[m.hash] = m
		for _, meth := range m.mod.Methods {
			if prev, dup := owner[meth.Name]; dup {
				return nil, fmt.Errorf("splitvm: method %q defined by both %q and %q; method names must be unique across a link set",
					meth.Name, prev.mod.Name, m.mod.Name)
			}
			owner[meth.Name] = m
		}
	}
	for _, m := range mods {
		for i := range m.mod.Imports {
			im := &m.mod.Imports[i]
			dep, ok := byHash[im.Hash]
			if !ok {
				return nil, fmt.Errorf("splitvm: module %q imports %q (hash %x) which is not in the link set",
					m.mod.Name, im.Module, im.Hash[:8])
			}
			for _, want := range im.Methods {
				got := dep.mod.Method(want.Name)
				if got == nil {
					return nil, fmt.Errorf("splitvm: module %q imports method %q from %q, which does not define it",
						m.mod.Name, want.Name, dep.mod.Name)
				}
				if !sameLinkSignature(got, want) {
					return nil, fmt.Errorf("splitvm: module %q imports %q.%s with a signature that does not match the linked module",
						m.mod.Name, dep.mod.Name, want.Name)
				}
			}
		}
	}
	return &LinkedModule{mods: append([]*Module(nil), mods...)}, nil
}

func sameLinkSignature(got *cil.Method, want cil.ImportedMethod) bool {
	if len(got.Params) != len(want.Params) || got.Ret != want.Ret {
		return false
	}
	for i := range got.Params {
		if got.Params[i] != want.Params[i] {
			return false
		}
	}
	return true
}

// Modules returns the link set's members in link order.
func (lm *LinkedModule) Modules() []*Module { return append([]*Module(nil), lm.mods...) }

// Methods lists every method name of the set, module by module in link
// order (names are unique across the set by the Link contract).
func (lm *LinkedModule) Methods() []string {
	var out []string
	for _, m := range lm.mods {
		out = append(out, m.Methods()...)
	}
	return out
}

// DeployLinked deploys a linked set of modules as one machine: every module
// is JIT-compiled for the configured target through the engine's code cache
// — eagerly, or per method on first call with WithLazyCompile — and
// cross-module calls dispatch directly to the resolved native code. The
// returned Deployment runs any method of the set by its plain name and its
// per-method state queries (CompileState, MethodCounts) span all units.
func (e *Engine) DeployLinked(lm *LinkedModule, opts ...DeployOption) (*Deployment, error) {
	return e.DeployLinkedContext(context.Background(), lm, opts...)
}

// DeployLinkedContext is DeployLinked with cancellation, with the same
// semantics as DeployContext (per-unit image compilations are shared and
// survive the caller's cancellation; a cancelled lazy run never leaves a
// half-patched dispatch table).
func (e *Engine) DeployLinkedContext(ctx context.Context, lm *LinkedModule, opts ...DeployOption) (*Deployment, error) {
	if lm == nil || len(lm.mods) == 0 {
		return nil, fmt.Errorf("splitvm: DeployLinked needs a linked module (did Link fail?)")
	}
	cfg := e.deployConfig(opts)
	tgt, err := cfg.targetDesc()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	jopts := cfg.jitOptions()
	units := make([]core.LinkUnit, len(lm.mods))
	allHit, allDisk := true, true
	for i, m := range lm.mods {
		var img *core.Image
		if cfg.noCache {
			priv := *tgt
			img, err = e.buildImage(m, &priv, jopts, cfg.lazyCompile, cacheKey{})
			allHit, allDisk = false, false
		} else {
			var hit, diskHit bool
			img, hit, diskHit, err = e.image(ctx, m, tgt, jopts, cfg.lazyCompile)
			allHit = allHit && hit
			allDisk = allDisk && diskHit
		}
		if err != nil {
			return nil, err
		}
		units[i] = core.LinkUnit{Hash: m.hash, Image: img}
	}
	linked, err := core.NewLinked(units)
	if err != nil {
		return nil, err
	}
	d := linked.Instantiate()
	cfg.applyTiering(d)
	cfg.applyGovernor(d)
	return &Deployment{d: d, fromCache: allHit, fromDisk: allDisk, linked: linked}, nil
}
