package splitvm

import (
	"strings"
	"testing"
)

const linkUtilSource = `
i64 cube(i64 x) {
    return x * x * x;
}
`

const linkMainSource = `
i64 sumcubes(i32 n) {
    i64 s = 0;
    for (i32 i = 1; i <= n; i++) { s = s + cube((i64) i); }
    return s;
}
`

// compileLinkPair compiles the util/main pair as two modules; main's call to
// cube crosses the module boundary and becomes a content-hash import.
func compileLinkPair(t *testing.T, eng *Engine) (util, main *Module) {
	t.Helper()
	mods, err := eng.CompileModules([]ModuleSource{
		{Name: "util", Source: linkUtilSource},
		{Name: "main", Source: linkMainSource},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(mods) != 2 {
		t.Fatalf("CompileModules returned %d modules, want 2", len(mods))
	}
	return mods[0], mods[1]
}

// TestCompileModulesLinkDeploy is the multi-module acceptance walk: compile
// a two-module program, link it, deploy it, and get results and simulated
// cycles identical to the same program compiled as one module.
func TestCompileModulesLinkDeploy(t *testing.T) {
	eng := New()
	util, mainMod := compileLinkPair(t, eng)

	if n := len(util.mod.Imports); n != 0 {
		t.Fatalf("util has %d imports, want 0", n)
	}
	if n := len(mainMod.mod.Imports); n != 1 {
		t.Fatalf("main has %d imports, want 1 (the cross-module call to cube)", n)
	}
	if mainMod.mod.Imports[0].Hash != util.hash {
		t.Fatal("main's import hash is not util's content hash")
	}

	lm, err := eng.Link(util, mainMod)
	if err != nil {
		t.Fatal(err)
	}
	if got := lm.Methods(); len(got) != 2 {
		t.Fatalf("linked methods = %v", got)
	}
	dep, err := eng.DeployLinked(lm)
	if err != nil {
		t.Fatal(err)
	}
	got, err := dep.Run("sumcubes", IntArg(10))
	if err != nil {
		t.Fatal(err)
	}
	if got.I != 3025 { // (10*11/2)^2
		t.Fatalf("sumcubes(10) = %v, want 3025", got)
	}
	// Methods of every unit are callable by plain name.
	if v, err := dep.Run("cube", IntArg(7)); err != nil || v.I != 343 {
		t.Fatalf("cube(7) = %v, %v", v, err)
	}

	// Splitting must not change the generated code: the concatenated
	// single-module program gives the same result and the same cycles for
	// the same call.
	mono, err := eng.Compile(linkUtilSource + linkMainSource)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := eng.Deploy(mono)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Run("sumcubes", IntArg(10))
	if err != nil {
		t.Fatal(err)
	}
	dep2, err := eng.DeployLinked(lm)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := dep2.Run("sumcubes", IntArg(10))
	if err != nil {
		t.Fatal(err)
	}
	if got2 != want {
		t.Fatalf("linked result %v != single-module result %v", got2, want)
	}
	if ref.Cycles() != dep2.Cycles() {
		t.Fatalf("linked cycles %d != single-module cycles %d", dep2.Cycles(), ref.Cycles())
	}
}

// TestLinkedFromLoadedBytes: the byte streams carry the import table, so a
// fresh engine can reconstruct and deploy the linked program from bytes
// alone — the paper's distribution model across a module boundary.
func TestLinkedFromLoadedBytes(t *testing.T) {
	producer := New()
	util, mainMod := compileLinkPair(t, producer)

	consumer := New()
	utilLoaded, err := consumer.Load(util.Encoded())
	if err != nil {
		t.Fatal(err)
	}
	mainLoaded, err := consumer.Load(mainMod.Encoded())
	if err != nil {
		t.Fatal(err)
	}
	lm, err := consumer.Link(utilLoaded, mainLoaded)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := consumer.DeployLinked(lm)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := dep.Run("sumcubes", IntArg(5)); err != nil || got.I != 225 {
		t.Fatalf("sumcubes(5) = %v, %v, want 225", got, err)
	}
}

// TestLinkMissingDependencyFailsEarly pins the failure-locality satellite: a
// module whose import is absent from the set is a Link error naming the
// dependency — and a plain Deploy error — never a first-call panic.
func TestLinkMissingDependencyFailsEarly(t *testing.T) {
	eng := New()
	_, mainMod := compileLinkPair(t, eng)

	if _, err := eng.Link(mainMod); err == nil || !strings.Contains(err.Error(), "not in the link set") {
		t.Fatalf("Link without the dependency = %v, want a missing-import error", err)
	}
	if _, err := eng.Deploy(mainMod); err == nil || !strings.Contains(err.Error(), "Link") {
		t.Fatalf("Deploy of an importing module = %v, want an error directing to Link", err)
	}
	if _, err := eng.DeployHetero(CellLike(), mainMod, HostOnly); err == nil {
		t.Fatal("DeployHetero accepted an importing module")
	}
}

// TestLinkDuplicateMethodNames: method names must be unique across a link
// set, so plain-name dispatch is unambiguous.
func TestLinkDuplicateMethodNames(t *testing.T) {
	eng := New()
	a, err := eng.Compile(linkUtilSource, WithModuleName("a"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := eng.Compile(linkUtilSource+"\ni64 other(i64 x) { return x; }", WithModuleName("b"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Link(a, b); err == nil || !strings.Contains(err.Error(), "unique") {
		t.Fatalf("Link with duplicate method names = %v, want a uniqueness error", err)
	}
	if _, err := eng.Link(a, a); err == nil {
		t.Fatal("Link accepted the same module twice")
	}
}

// TestCompileModulesRejectsCycles: cross-source call cycles cannot be
// content-hashed (a module's hash cannot include itself) and must fail the
// offline compilation with a clear error.
func TestCompileModulesRejectsCycles(t *testing.T) {
	eng := New()
	_, err := eng.CompileModules([]ModuleSource{
		{Name: "a", Source: "i64 pingf(i64 x) { if (x <= 0) { return 0; } return pongf(x - 1); }"},
		{Name: "b", Source: "i64 pongf(i64 x) { if (x <= 0) { return 1; } return pingf(x - 1); }"},
	})
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("CompileModules with a cross-module cycle = %v, want a cycle error", err)
	}
}

// TestDeployLinkedLazy: lazy compilation composes with linking — nothing
// compiles at deploy time, a cross-module call resolves callee methods on
// demand, and results and cycles stay identical to the eager linked deploy.
func TestDeployLinkedLazy(t *testing.T) {
	eng := New()
	util, mainMod := compileLinkPair(t, eng)
	lm, err := eng.Link(util, mainMod)
	if err != nil {
		t.Fatal(err)
	}

	eager, err := eng.DeployLinked(lm)
	if err != nil {
		t.Fatal(err)
	}
	want, err := eager.Run("sumcubes", IntArg(12))
	if err != nil {
		t.Fatal(err)
	}

	lazy, err := eng.DeployLinked(lm, WithLazyCompile(true))
	if err != nil {
		t.Fatal(err)
	}
	if !lazy.Lazy() {
		t.Fatal("Lazy() = false on a lazy linked deployment")
	}
	if compiled, total := lazy.MethodCounts(); compiled != 0 || total != 2 {
		t.Fatalf("fresh lazy linked counts = %d/%d, want 0/2", compiled, total)
	}
	got, err := lazy.Run("sumcubes", IntArg(12))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("lazy linked result %v != eager %v", got, want)
	}
	if eager.Cycles() != lazy.Cycles() {
		t.Fatalf("lazy linked cycles %d != eager %d", lazy.Cycles(), eager.Cycles())
	}
	// The cross-module call demanded cube transitively: both methods ready.
	if compiled, total := lazy.MethodCounts(); compiled != 2 || total != 2 {
		t.Fatalf("lazy linked counts after run = %d/%d, want 2/2", compiled, total)
	}
	rep := lazy.CompileReport()
	if !rep.Lazy || rep.MethodsCompiled != 2 || rep.MethodsTotal != 2 {
		t.Fatalf("lazy linked CompileReport = %+v", rep)
	}
}

// TestDeployLinkedSharesCache: repeated linked deployments resolve every
// unit from the engine's code cache.
func TestDeployLinkedSharesCache(t *testing.T) {
	eng := New()
	util, mainMod := compileLinkPair(t, eng)
	lm, err := eng.Link(util, mainMod)
	if err != nil {
		t.Fatal(err)
	}
	first, err := eng.DeployLinked(lm)
	if err != nil {
		t.Fatal(err)
	}
	if first.FromCache() {
		t.Fatal("first linked deploy claims a cache hit")
	}
	second, err := eng.DeployLinked(lm)
	if err != nil {
		t.Fatal(err)
	}
	if !second.FromCache() {
		t.Fatal("second linked deploy missed the code cache")
	}
	if cs := eng.CompileStats(); cs.Compilations != 2 {
		t.Fatalf("compilations = %d, want 2 (one per unit, once)", cs.Compilations)
	}
}
