package splitvm

import (
	"repro/internal/target"
)

// Option configures one engine or one Compile/Deploy call. Options given to
// New apply to every call on that engine; options given to a call apply on
// top, last writer wins.
type Option func(*config)

// config is the resolved configuration of one call. Offline options are read
// by Compile, online options by Deploy; passing either kind to either call
// is harmless.
type config struct {
	// Offline (Compile) options.
	moduleName          string
	vectorize           bool
	constFold           bool
	annotations         bool
	regAllocAnnotations bool

	// Online (Deploy) options.
	arch           target.Arch
	desc           *target.Desc
	regAlloc       RegAllocMode
	forceScalarize bool
	noCache        bool

	// Engine-wide options (read by New only).
	cacheSize int
}

func defaultConfig() config {
	return config{
		vectorize:           true,
		constFold:           true,
		annotations:         true,
		regAllocAnnotations: true,
		arch:                target.X86SSE,
		regAlloc:            RegAllocSplit,
	}
}

// targetDesc resolves the deployment target: an explicit descriptor wins
// over a registry name.
func (c *config) targetDesc() (*target.Desc, error) {
	if c.desc != nil {
		return c.desc, nil
	}
	return target.Lookup(c.arch)
}

// WithModuleName names the module the offline compiler produces (default
// "app"; CompileKernel defaults to the kernel name).
func WithModuleName(name string) Option {
	return func(c *config) { c.moduleName = name }
}

// WithVectorize enables or disables the offline auto-vectorizer. Disabling
// it produces the scalar-bytecode baseline of Table 1.
func WithVectorize(on bool) Option {
	return func(c *config) { c.vectorize = on }
}

// WithConstFold enables or disables offline constant folding.
func WithConstFold(on bool) Option {
	return func(c *config) { c.constFold = on }
}

// WithAnnotations(false) strips every split-compilation annotation from the
// produced module while keeping the code identical (the Figure 1 ablation).
func WithAnnotations(on bool) Option {
	return func(c *config) { c.annotations = on }
}

// WithRegAllocAnnotations enables or disables only the offline register
// allocation analysis (the annotation the split allocator consumes).
func WithRegAllocAnnotations(on bool) Option {
	return func(c *config) { c.regAllocAnnotations = on }
}

// WithTarget selects the deployment target by registry name (default
// target.X86SSE). The name is resolved against the registry at Deploy time,
// so targets added with target.Register are reachable.
func WithTarget(a target.Arch) Option {
	return func(c *config) { c.arch = a; c.desc = nil }
}

// WithTargetDesc selects the deployment target by explicit descriptor,
// bypassing the registry — the way to deploy on ad-hoc variants such as
// desc.WithIntRegs(n).
func WithTargetDesc(d *target.Desc) Option {
	return func(c *config) { c.desc = d }
}

// WithRegAllocMode selects the JIT's register allocation strategy (default
// RegAllocSplit, the annotation-driven allocator).
func WithRegAllocMode(m RegAllocMode) Option {
	return func(c *config) { c.regAlloc = m }
}

// WithForceScalarize makes the JIT ignore the target's SIMD unit and
// scalarize every vector builtin (the "JIT simply ignores the
// vectorization" ablation).
func WithForceScalarize(on bool) Option {
	return func(c *config) { c.forceScalarize = on }
}

// WithCacheSize bounds the engine's code cache to at most n native images;
// when a completed JIT compilation would exceed the bound, the least
// recently deployed image is evicted (and counted in CacheStats.Evictions).
// n <= 0 — the default — keeps the cache unbounded. The bound is a property
// of the whole engine: it takes effect when passed to New and is ignored on
// individual Compile/Deploy calls.
func WithCacheSize(n int) Option {
	return func(c *config) {
		if n < 0 {
			n = 0
		}
		c.cacheSize = n
	}
}

// WithCache enables or disables the engine's code cache for a deployment
// (default enabled). With the cache off the JIT always runs and the
// resulting image is not shared.
func WithCache(on bool) Option {
	return func(c *config) { c.noCache = !on }
}
