package splitvm

import (
	"os"
	"sync"
	"time"

	"repro/internal/anno"
	"repro/internal/profile"
	"repro/internal/target"
)

// The options API is typed by stage, so misuse fails at compile time instead
// of being silently ignored at run time:
//
//   - CompileOption configures the offline stage (Compile, CompileKernel,
//     CompileModules): module naming, optimizer switches, annotation schema.
//   - DeployOption configures the online stage (Deploy, DeployLinked,
//     DeployHetero): target selection, JIT knobs, caching, laziness,
//     tiering.
//   - SharedOption is both — WithProfile is the canonical example: at
//     compile time it embeds the profile in the module's annotations, at
//     deploy time it warms the machine.
//   - Engine-wide options (WithCacheSize, WithDiskCache) are only the root
//     Option: New accepts every kind, but passing an engine-wide option to
//     Compile or Deploy no longer type-checks.
//
// Options given to New apply to every call on that engine; options given to
// a call apply on top, last writer wins.

// Option is the root option interface: anything New accepts. It is the
// deprecated name for call-site use — pass CompileOption values to Compile
// and DeployOption values to Deploy instead; the concrete With* constructors
// already return the right type.
type Option interface {
	apply(*config)
}

// CompileOption configures the offline stage of one engine or one call.
type CompileOption interface {
	Option
	compileOption()
}

// DeployOption configures the online stage of one engine or one call.
type DeployOption interface {
	Option
	deployOption()
}

// SharedOption is valid for both stages (see WithProfile).
type SharedOption interface {
	CompileOption
	DeployOption
}

// The concrete option kinds. All four are plain functions over the resolved
// config; the marker methods only exist to make the stage visible to the
// type checker.
type (
	engineOption  func(*config)
	compileOption func(*config)
	deployOption  func(*config)
	sharedOption  func(*config)
)

func (o engineOption) apply(c *config)  { o(c) }
func (o compileOption) apply(c *config) { o(c) }
func (compileOption) compileOption()    {}
func (o deployOption) apply(c *config)  { o(c) }
func (deployOption) deployOption()      {}
func (o sharedOption) apply(c *config)  { o(c) }
func (sharedOption) compileOption()     {}
func (sharedOption) deployOption()      {}

// Annotation schema versions, for WithAnnotationVersion and
// WithMinAnnotationVersion. Version 0 is the grandfathered legacy encoding
// (bare payloads, no container); version 1 is the self-describing envelope.
const (
	AnnotationV0 uint32 = anno.V0
	AnnotationV1 uint32 = anno.V1
	// AnnotationVersionCurrent is the newest schema the toolchain emits and
	// understands — the default for WithAnnotationVersion.
	AnnotationVersionCurrent uint32 = anno.CurrentVersion
)

// config is the resolved configuration of one call. Offline options are read
// by Compile, online options by Deploy; the type system keeps each kind at
// the calls that read it.
type config struct {
	// Offline (Compile) options.
	moduleName          string
	vectorize           bool
	constFold           bool
	annotations         bool
	regAllocAnnotations bool
	annotationVersion   uint32

	// Online (Deploy) options.
	arch           target.Arch
	desc           *target.Desc
	regAlloc       RegAllocMode
	forceScalarize bool
	noCache        bool
	minAnnoVersion uint32
	compileWorkers int
	lazyCompile    bool
	// Tiering options (per machine, never part of the cache key).
	tiering      bool
	promoteCalls int64
	profile      *profile.ModuleProfile
	// Resource-governor options (per machine, never part of the cache key;
	// see governor.go).
	memLimit    int64
	runDeadline time.Duration

	// Engine-wide options (read by New only).
	cacheSize int
	diskDir   string
}

// envLazyCompile is the SPLITVM_LAZY override, read once per process: "1"
// (or "on") makes every deployment lazy by default, like SPLITVM_TIER does
// for tiering. CI uses it to prove lazy compilation never moves a gated
// metric.
var envLazyCompile = sync.OnceValue(func() bool {
	v := os.Getenv("SPLITVM_LAZY")
	return v == "1" || v == "on"
})

func defaultConfig() config {
	return config{
		vectorize:           true,
		constFold:           true,
		annotations:         true,
		regAllocAnnotations: true,
		annotationVersion:   anno.CurrentVersion,
		arch:                target.X86SSE,
		regAlloc:            RegAllocSplit,
		lazyCompile:         envLazyCompile(),
		memLimit:            envMemLimit(),
	}
}

// targetDesc resolves the deployment target: an explicit descriptor wins
// over a registry name.
func (c *config) targetDesc() (*target.Desc, error) {
	if c.desc != nil {
		return c.desc, nil
	}
	return target.Lookup(c.arch)
}

// WithModuleName names the module the offline compiler produces (default
// "app"; CompileKernel defaults to the kernel name).
func WithModuleName(name string) CompileOption {
	return compileOption(func(c *config) { c.moduleName = name })
}

// WithVectorize enables or disables the offline auto-vectorizer. Disabling
// it produces the scalar-bytecode baseline of Table 1.
func WithVectorize(on bool) CompileOption {
	return compileOption(func(c *config) { c.vectorize = on })
}

// WithConstFold enables or disables offline constant folding.
func WithConstFold(on bool) CompileOption {
	return compileOption(func(c *config) { c.constFold = on })
}

// WithAnnotations(false) strips every split-compilation annotation from the
// produced module while keeping the code identical (the Figure 1 ablation).
func WithAnnotations(on bool) CompileOption {
	return compileOption(func(c *config) { c.annotations = on })
}

// WithRegAllocAnnotations enables or disables only the offline register
// allocation analysis (the annotation the split allocator consumes).
func WithRegAllocAnnotations(on bool) CompileOption {
	return compileOption(func(c *config) { c.regAllocAnnotations = on })
}

// WithAnnotationVersion selects the on-wire schema version of the
// annotations the offline compiler emits (default AnnotationVersionCurrent).
// Version 0 is the legacy pre-envelope encoding, kept for byte streams that
// must deploy on readers predating the versioned container; version 1 wraps
// the payloads in the self-describing envelope and carries the spill-class
// metadata. Compile fails on versions the writer cannot emit.
func WithAnnotationVersion(v uint32) CompileOption {
	return compileOption(func(c *config) { c.annotationVersion = v })
}

// WithMinAnnotationVersion makes deployments reject annotation sections
// older than the given schema version during load-time negotiation: stale
// sections degrade to online-only compilation (surfaced in the
// CompileReport) instead of being consumed. Zero — the default — accepts
// everything, including grandfathered v0 streams.
func WithMinAnnotationVersion(v uint32) DeployOption {
	return deployOption(func(c *config) { c.minAnnoVersion = v })
}

// WithTarget selects the deployment target by registry name (default
// target.X86SSE). The name is resolved against the registry at Deploy time,
// so targets added with target.Register are reachable.
func WithTarget(a target.Arch) DeployOption {
	return deployOption(func(c *config) { c.arch = a; c.desc = nil })
}

// WithTargetDesc selects the deployment target by explicit descriptor,
// bypassing the registry — the way to deploy on ad-hoc variants such as
// desc.WithIntRegs(n).
func WithTargetDesc(d *target.Desc) DeployOption {
	return deployOption(func(c *config) { c.desc = d })
}

// WithRegAllocMode selects the JIT's register allocation strategy (default
// RegAllocSplit, the annotation-driven allocator).
func WithRegAllocMode(m RegAllocMode) DeployOption {
	return deployOption(func(c *config) { c.regAlloc = m })
}

// WithForceScalarize makes the JIT ignore the target's SIMD unit and
// scalarize every vector builtin (the "JIT simply ignores the
// vectorization" ablation).
func WithForceScalarize(on bool) DeployOption {
	return deployOption(func(c *config) { c.forceScalarize = on })
}

// WithLazyCompile switches a deployment to on-demand compilation: Deploy
// installs a per-method stub table instead of JIT-compiling the whole
// module, and each method compiles on its first call — once per image,
// however many deployments share it, and once fleet-wide when the engine has
// a disk cache (replicas publish compiled methods to the shared volume).
// Lazily compiled code is bit-identical to the eager build, so results and
// simulated cycles never change; only when compile time is paid does.
// Deploy-time validation (decode, verify, link resolution) is not deferred:
// anything wrong with the module still fails the deployment, never a first
// call. The default is eager; SPLITVM_LAZY=1 flips the process-wide default.
func WithLazyCompile(on bool) DeployOption {
	return deployOption(func(c *config) { c.lazyCompile = on })
}

// WithCacheSize bounds the engine's code cache to at most n native images;
// when a completed JIT compilation would exceed the bound, the least
// recently deployed image is evicted (and counted in CacheStats.Evictions).
// n <= 0 — the default — keeps the cache unbounded. The bound is a property
// of the whole engine: it only type-checks on New.
func WithCacheSize(n int) Option {
	return engineOption(func(c *config) {
		if n < 0 {
			n = 0
		}
		c.cacheSize = n
	})
}

// WithDiskCache backs the engine's code cache with a persistent
// content-addressed store rooted at dir (created if absent): every completed
// JIT compilation is spilled to disk keyed by the same (module sha256,
// target descriptor, JIT options) identity as the in-memory cache, an LRU
// eviction demotes to disk instead of dropping, and a miss consults the
// disk before compiling — so restarted engines deploy warm
// (Deployment.FromCache reports true, CompileStats counts no compilation)
// and replicas can share a cache volume. Lazy deployments store per-method
// entries under the same identity, so a method JIT-compiles at most once
// fleet-wide. Entries are written atomically and checksummed; a corrupt or
// truncated entry degrades to recompilation, never to an error. Like
// WithCacheSize this is a property of the whole engine: it only type-checks
// on New. Check Engine.DiskCacheErr when durability is required.
func WithDiskCache(dir string) Option {
	return engineOption(func(c *config) { c.diskDir = dir })
}

// WithCompileWorkers bounds the number of methods the JIT compiles
// concurrently during one compilation (0 — the default — uses GOMAXPROCS; 1
// compiles sequentially). The generated native code is bit-identical for
// every worker count — parallelism buys wall-clock compile time, never a
// different program — so the knob is deliberately not part of the code-cache
// key: deployments that differ only in their worker count share images.
func WithCompileWorkers(n int) DeployOption {
	return deployOption(func(c *config) {
		if n < 0 {
			n = 1
		}
		c.compileWorkers = n
	})
}

// WithCache enables or disables the engine's code cache for a deployment
// (default enabled). With the cache off the JIT always runs and the
// resulting image is not shared.
func WithCache(on bool) DeployOption {
	return deployOption(func(c *config) { c.noCache = !on })
}
