package splitvm

import (
	"encoding/json"
	"testing"
)

// These tests cover the bench.go surface: every Run* re-export must produce
// a structurally sound report through the public API. Small problem sizes
// keep them cheap; the quantitative shape of the paper's results is
// asserted by internal/bench's own tests.

func TestRunTable1Surface(t *testing.T) {
	rep, err := RunTable1(Table1Options{N: 64})
	if err != nil {
		t.Fatal(err)
	}
	names := Table1KernelNames()
	if len(rep.Rows) != len(names) {
		t.Fatalf("table1 has %d rows, want %d kernels", len(rep.Rows), len(names))
	}
	for i, row := range rep.Rows {
		if row.Kernel != names[i] {
			t.Errorf("row %d is %s, want %s (paper's order)", i, row.Kernel, names[i])
		}
		if len(row.Cells) != 3 {
			t.Fatalf("%s has %d cells, want the 3 Table 1 targets", row.Kernel, len(row.Cells))
		}
		for _, cell := range row.Cells {
			if cell.ScalarCycles <= 0 || cell.VectorCycles <= 0 {
				t.Errorf("%s on %s reports non-positive cycles (%d scalar, %d vector)",
					row.Kernel, cell.Target, cell.ScalarCycles, cell.VectorCycles)
			}
		}
	}
}

func TestRunFigure1Surface(t *testing.T) {
	rep, err := RunFigure1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) == 0 {
		t.Fatal("figure1 report is empty")
	}
	for _, row := range rep.Rows {
		if row.JITStepsWithAnnotations >= row.JITStepsWithoutAnnotations {
			t.Errorf("%s: annotations did not reduce JIT effort (%d with vs %d without)",
				row.Kernel, row.JITStepsWithAnnotations, row.JITStepsWithoutAnnotations)
		}
		if row.AnnotationBytes <= 0 || row.EncodedBytes <= 0 {
			t.Errorf("%s: degenerate sizes (%d annotation bytes in %d encoded)",
				row.Kernel, row.AnnotationBytes, row.EncodedBytes)
		}
	}
}

func TestRunRegAllocSurface(t *testing.T) {
	rep, err := RunRegAlloc(RegAllocOptions{RegisterFiles: []int{6}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 1 {
		t.Fatalf("regalloc sweep has %d points, want 1", len(rep.Points))
	}
	pt := rep.Points[0]
	if pt.IntRegs != 6 {
		t.Errorf("point is for %d registers, want 6", pt.IntRegs)
	}
	if pt.WeightedSplit > pt.WeightedOnline {
		t.Errorf("split allocator spills more than the online baseline (%d vs %d)",
			pt.WeightedSplit, pt.WeightedOnline)
	}
}

func TestRunCodeSizeSurface(t *testing.T) {
	rep, err := RunCodeSize()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) == 0 {
		t.Fatal("codesize report is empty")
	}
	if rep.AverageExpansion <= 1 {
		t.Errorf("average native/bytecode expansion = %.2f, want > 1 (bytecode is the compact form)",
			rep.AverageExpansion)
	}
}

func TestRunHeteroSurface(t *testing.T) {
	rep, err := RunHetero(HeteroOptions{Frames: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.ResultsMatch {
		t.Error("host-only and offloaded runs disagree on results")
	}
	if !rep.NumericalOffloaded || !rep.ControlStayedOnHost {
		t.Errorf("placement went wrong: numerical offloaded=%v, control on host=%v",
			rep.NumericalOffloaded, rep.ControlStayedOnHost)
	}
	if rep.Speedup <= 1 {
		t.Errorf("offload speedup = %.2f, want > 1", rep.Speedup)
	}
}

func TestRunScalarizationAblationSurface(t *testing.T) {
	ratio, err := RunScalarizationAblation("saxpy_fp", 64)
	if err != nil {
		t.Fatal(err)
	}
	if ratio <= 1 {
		t.Errorf("scalarized/SIMD cycle ratio = %.2f, want > 1 on the SIMD-capable target", ratio)
	}
}

// TestResultsRoundTrip covers the artifact surface end to end: build a
// Results value from real (small) runs, marshal it the way cmd/dacbench
// does, parse it back and gate it against itself.
func TestResultsRoundTrip(t *testing.T) {
	table1, err := RunTable1(Table1Options{N: 64})
	if err != nil {
		t.Fatal(err)
	}
	res := &Results{Table1: table1}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseResults(data)
	if err != nil {
		t.Fatal(err)
	}
	rep := CompareResults(res, parsed, DiffOptions{})
	if rep.Failed() {
		t.Fatalf("artifact failed the gate against itself:\n%s", rep)
	}
	if len(rep.Rows) == 0 {
		t.Error("no metrics extracted from a real artifact")
	}
}

func TestRunCompileSurface(t *testing.T) {
	rep, err := RunCompile(CompileOptions{Runs: 2, ParallelMethods: 4})
	if err != nil {
		t.Fatal(err)
	}
	// kernels × (Table 1 targets + wide-vector) × 3 regalloc modes.
	want := len(Table1KernelNames()) * 4 * 3
	if len(rep.Cells) != want {
		t.Fatalf("compile report has %d cells, want %d", len(rep.Cells), want)
	}
	sawWide := false
	for _, c := range rep.Cells {
		if c.WarmNanosPerCompile <= 0 || c.ColdNanos <= 0 || c.MethodsPerSec <= 0 {
			t.Errorf("%s/%s/%s: degenerate compile timings %+v", c.Kernel, c.Target, c.Mode, c)
		}
		if c.AllocsPerCompile <= 0 {
			t.Errorf("%s/%s/%s: allocs/compile = %v, want > 0 (MemStats must be wired up)",
				c.Kernel, c.Target, c.Mode, c.AllocsPerCompile)
		}
		if string(c.Target) == "widevec-256" {
			sawWide = true
		}
	}
	if !sawWide {
		t.Error("compile matrix is missing the wide-vector target")
	}
	p := rep.Parallel
	if p == nil || p.Methods != 4 || p.SeqNanosPerCompile <= 0 || p.ParNanosPerCompile <= 0 || p.Speedup <= 0 {
		t.Fatalf("parallel pipeline measurement is degenerate: %+v", p)
	}

	// The compile section is tracked, never gated: it must not add metrics
	// and must be stripped from refreshed baselines.
	res := &Results{Compile: rep}
	if n := len(res.Metrics()); n != 0 {
		t.Errorf("compile section leaked %d metrics into the regression gate", n)
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	stripped, err := StripUngatedResults(data)
	if err != nil {
		t.Fatal(err)
	}
	var kept map[string]json.RawMessage
	if err := json.Unmarshal(stripped, &kept); err != nil {
		t.Fatal(err)
	}
	if _, ok := kept["compile"]; ok {
		t.Error("compile section survived the baseline strip")
	}
}
