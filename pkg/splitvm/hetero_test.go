package splitvm

import (
	"testing"
)

// heteroTestSource returns the mixed application of the Section 3 scenario:
// a control-heavy checksum that belongs on the host plus a vectorizable
// numerical kernel that belongs on an accelerator.
func heteroTestSource(t *testing.T) string {
	t.Helper()
	var checksum, saxpy string
	for _, k := range Kernels() {
		switch k.Name {
		case "checksum":
			checksum = k.Source
		case "saxpy_fp":
			saxpy = k.Source
		}
	}
	if checksum == "" || saxpy == "" {
		t.Fatal("kernel suite is missing checksum or saxpy_fp")
	}
	return checksum + saxpy
}

// saxpyCall invokes the numerical kernel on a hetero runtime and returns
// where it ran plus a result sample.
func saxpyCall(t *testing.T, rt *HeteroRuntime, n int) (*CallResult, float64) {
	t.Helper()
	y := NewArray(F64, n)
	x := NewArray(F64, n)
	for i := 0; i < n; i++ {
		y.SetFloat(i, float64(i%17))
		x.SetFloat(i, float64((i*3)%13))
	}
	res, err := rt.Call("saxpy",
		ArrayArg(y), ArrayArg(x),
		ScalarArg(F64, FloatArg(1.5)),
		ScalarArg(I32, IntArg(int64(n))))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) != 2 {
		t.Fatalf("saxpy returned %d output arrays, want the 2 array arguments copied back", len(res.Outputs))
	}
	return res, res.Outputs[0].Float(n - 1)
}

// TestDeployHeteroPlacement deploys one module on a Cell-like system under
// both policies through the public API and checks the paper's qualitative
// claims: the numerical kernel offloads under the annotation-guided policy,
// the control code stays on the host, and both mappings agree on results.
func TestDeployHeteroPlacement(t *testing.T) {
	eng := New()
	m, err := eng.Compile(heteroTestSource(t), WithModuleName("hetero-app"))
	if err != nil {
		t.Fatal(err)
	}
	sys := CellLike()

	host, err := eng.DeployHetero(sys, m, HostOnly)
	if err != nil {
		t.Fatal(err)
	}
	ann, err := eng.DeployHetero(sys, m, Annotated)
	if err != nil {
		t.Fatal(err)
	}

	const n = 512
	hres, hval := saxpyCall(t, host, n)
	if hres.Offloaded || hres.CoreName != sys.Host.Name {
		t.Errorf("host-only policy ran saxpy on %s (offloaded=%v)", hres.CoreName, hres.Offloaded)
	}
	ares, aval := saxpyCall(t, ann, n)
	if !ares.Offloaded {
		t.Errorf("annotation-guided policy kept the vectorizable kernel on %s", ares.CoreName)
	}
	if hval != aval {
		t.Errorf("policies disagree on saxpy results: host %v, offloaded %v", hval, aval)
	}
	if hres.Cycles <= 0 || ares.Cycles <= 0 {
		t.Errorf("call cycles must be positive (host %d, offloaded %d)", hres.Cycles, ares.Cycles)
	}

	// The branchy checksum must not be shipped to an accelerator.
	header := NewArray(U8, 64)
	for i := 0; i < header.Len(); i++ {
		header.SetInt(i, int64(i%251))
	}
	cres, err := ann.Call("checksum", ArrayArg(header), ScalarArg(I32, IntArg(64)))
	if err != nil {
		t.Fatal(err)
	}
	if cres.Offloaded {
		t.Errorf("annotation-guided policy offloaded the control-heavy checksum to %s", cres.CoreName)
	}
}

// TestDeployHeteroRedeployReusesCache extends the single-runtime cache test
// in engine_test.go: building a second runtime for the same module — even
// under a different policy — must reuse every native image.
func TestDeployHeteroRedeployReusesCache(t *testing.T) {
	eng := New()
	m, err := eng.Compile(heteroTestSource(t), WithModuleName("hetero-cache"))
	if err != nil {
		t.Fatal(err)
	}
	sys := CellLike() // ppe host + spu0/spu1: two distinct core types, three cores

	if _, err := eng.DeployHetero(sys, m, Annotated); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.DeployHetero(sys, m, HostOnly); err != nil {
		t.Fatal(err)
	}
	st := eng.CacheStats()
	if st.Misses != 2 {
		t.Errorf("misses = %d, want one JIT compilation per core type (2) across both runtimes", st.Misses)
	}
	if st.Hits != 4 {
		t.Errorf("hits = %d, want 4 (spu1 of the first runtime + all three cores of the second)", st.Hits)
	}
}

// TestDeployHeteroEmbeddedSoC smoke-tests the second built-in system
// description through the public surface.
func TestDeployHeteroEmbeddedSoC(t *testing.T) {
	eng := New()
	m, err := eng.Compile(heteroTestSource(t), WithModuleName("soc-app"))
	if err != nil {
		t.Fatal(err)
	}
	sys := EmbeddedSoC()
	if len(sys.Accel) != 1 {
		t.Fatalf("EmbeddedSoC has %d accelerators, want 1", len(sys.Accel))
	}
	rt, err := eng.DeployHetero(sys, m, Annotated)
	if err != nil {
		t.Fatal(err)
	}
	res, _ := saxpyCall(t, rt, 256)
	if !res.Offloaded {
		t.Errorf("saxpy stayed on the MCU host; the DSP should take it")
	}
}
