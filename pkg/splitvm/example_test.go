package splitvm_test

import (
	"fmt"
	"log"
	"os"

	"repro/internal/target"
	"repro/pkg/splitvm"
)

const sumsqSource = `
i64 sumsq(i32 n) {
    i64 s = 0;
    for (i32 i = 1; i <= n; i++) { s = s + (i64) (i * i); }
    return s;
}
`

// The minimal round trip: compile MiniC offline into a deployable module,
// deploy it online on a simulated target, run an entry point. The same
// encoded bytes deploy on every registered target.
func Example() {
	eng := splitvm.New()

	mod, err := eng.Compile(sumsqSource, splitvm.WithModuleName("demo"))
	if err != nil {
		log.Fatal(err)
	}

	dep, err := eng.Deploy(mod, splitvm.WithTarget(target.X86SSE))
	if err != nil {
		log.Fatal(err)
	}
	res, err := dep.Run("sumsq", splitvm.IntArg(1000))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.I)
	// Output: 333833500
}

// Deployments share JIT-compiled native code through the engine's
// concurrency-safe cache: the first deploy of a (module, target, options)
// key compiles, every further deploy reuses the image and only pays for a
// fresh machine.
func ExampleEngine_Deploy() {
	eng := splitvm.New()
	mod, err := eng.Compile(sumsqSource)
	if err != nil {
		log.Fatal(err)
	}

	first, err := eng.Deploy(mod, splitvm.WithTarget(target.MCU))
	if err != nil {
		log.Fatal(err)
	}
	second, err := eng.Deploy(mod, splitvm.WithTarget(target.MCU))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("first from cache:", first.FromCache())
	fmt.Println("second from cache:", second.FromCache())
	fmt.Println("compilations:", eng.CompileStats().Compilations)
	// Output:
	// first from cache: false
	// second from cache: true
	// compilations: 1
}

// WithDiskCache persists compiled images to a content-addressed store, so
// a restarted engine (or another replica sharing the volume) deploys warm:
// the fresh engine serves the deploy from disk without compiling at all.
func ExampleWithDiskCache() {
	dir, err := os.MkdirTemp("", "svdc-example-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// First engine: compiles, and spills the image to the cache directory.
	eng1 := splitvm.New(splitvm.WithDiskCache(dir))
	mod, err := eng1.Compile(sumsqSource)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := eng1.Deploy(mod, splitvm.WithTarget(target.X86SSE)); err != nil {
		log.Fatal(err)
	}

	// Second engine over the same directory — a restart or a replica. The
	// module is re-loaded from its encoded bytes, as it would be after a
	// real process restart.
	eng2 := splitvm.New(splitvm.WithDiskCache(dir))
	reloaded, err := eng2.Load(mod.Encoded())
	if err != nil {
		log.Fatal(err)
	}
	dep, err := eng2.Deploy(reloaded, splitvm.WithTarget(target.X86SSE))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("warm deploy from cache:", dep.FromCache())
	fmt.Println("compilations on the restarted engine:", eng2.CompileStats().Compilations)
	fmt.Println("disk hits:", eng2.CacheStats().DiskHits)
	// Output:
	// warm deploy from cache: true
	// compilations on the restarted engine: 0
	// disk hits: 1
}

// A deployment with tiering observes its own execution; the profile
// exports as a versioned annotation value and warms a fresh deployment,
// which promotes hot functions on their first call.
func ExampleWithProfile() {
	eng := splitvm.New()
	mod, err := eng.Compile(sumsqSource)
	if err != nil {
		log.Fatal(err)
	}

	// Warm up a tiered deployment past the promotion threshold.
	hot, err := eng.Deploy(mod,
		splitvm.WithTarget(target.X86SSE),
		splitvm.WithTiering(true),
		splitvm.WithPromoteCalls(4))
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := hot.Run("sumsq", splitvm.IntArg(100)); err != nil {
			log.Fatal(err)
		}
	}

	// Seed a fresh deployment with the observed profile.
	seeded, err := eng.Deploy(mod,
		splitvm.WithTarget(target.X86SSE),
		splitvm.WithTiering(true),
		splitvm.WithPromoteCalls(4),
		splitvm.WithProfile(hot.ExportProfile()))
	if err != nil {
		log.Fatal(err)
	}
	res, err := seeded.Run("sumsq", splitvm.IntArg(100))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("value:", res.I)
	fmt.Println("promotions after one call:", seeded.TierStats().Promotions)
	// Output:
	// value: 338350
	// promotions after one call: 1
}
