package splitvm

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/target"
)

// lazyManySource synthesizes a module with n independent scalar methods
// (lm0..lm{n-1}), each returning a value that depends on its index so a
// wrong dispatch is caught by the result.
func lazyManySource(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, `
i64 lm%d(i32 n) {
    i64 s = %d;
    for (i32 i = 1; i <= n; i++) { s = s + (i64) (i * i) + %d; }
    return s;
}`, i, i, i)
	}
	return b.String()
}

// TestLazyDeployZeroUpFront is the acceptance walk for lazy compilation: a
// 16-method module deploys with zero up-front compilations, each first call
// compiles exactly its method, and results match the eager deployment.
func TestLazyDeployZeroUpFront(t *testing.T) {
	const methods = 16
	eng := New()
	m, err := eng.Compile(lazyManySource(methods))
	if err != nil {
		t.Fatal(err)
	}
	dep, err := eng.Deploy(m, WithLazyCompile(true))
	if err != nil {
		t.Fatal(err)
	}
	if !dep.Lazy() {
		t.Fatal("Lazy() = false on a WithLazyCompile deployment")
	}
	if compiled, total := dep.MethodCounts(); compiled != 0 || total != methods {
		t.Fatalf("fresh lazy deploy counts = %d/%d, want 0/%d", compiled, total, methods)
	}
	if cs := eng.CompileStats(); cs.Compilations != 0 || cs.LazyCompiles != 0 {
		t.Fatalf("fresh lazy deploy stats = %+v, want zero compilations", cs)
	}
	for name, st := range dep.CompileState() {
		if st.State != MethodStub {
			t.Fatalf("method %s state = %v before any call, want stub", name, st.State)
		}
	}

	// Eager reference on a separate engine (so its compilation does not
	// pollute the lazy engine's counters).
	ref, err := New().Deploy(m)
	if err != nil {
		t.Fatal(err)
	}

	// First call: exactly one method compiles, the result matches eager.
	want, err := ref.Run("lm5", IntArg(100))
	if err != nil {
		t.Fatal(err)
	}
	got, err := dep.Run("lm5", IntArg(100))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("lazy lm5 = %v, eager %v", got, want)
	}
	if compiled, _ := dep.MethodCounts(); compiled != 1 {
		t.Fatalf("after one call %d methods compiled, want 1", compiled)
	}
	if st := dep.CompileState()["lm5"]; st.State != MethodReady || st.CompileNanos <= 0 {
		t.Fatalf("lm5 state after call = %+v, want ready with nanos", st)
	}
	if cs := eng.CompileStats(); cs.Compilations != 0 || cs.LazyCompiles != 1 {
		t.Fatalf("after one call stats = %+v, want 0 compilations / 1 lazy compile", cs)
	}
	rep := dep.CompileReport()
	if !rep.Lazy || rep.MethodsCompiled != 1 || rep.MethodsTotal != methods {
		t.Fatalf("CompileReport = %+v", rep)
	}
	if dep.CompileNanos() <= 0 {
		t.Fatal("CompileNanos = 0 after a first-call compilation")
	}

	// Demand every method; the image ends fully compiled, still with zero
	// eager compilations on the engine.
	for i := 0; i < methods; i++ {
		name := fmt.Sprintf("lm%d", i)
		w, err := ref.Run(name, IntArg(30))
		if err != nil {
			t.Fatal(err)
		}
		g, err := dep.Run(name, IntArg(30))
		if err != nil {
			t.Fatal(err)
		}
		if g != w {
			t.Fatalf("%s lazy %v != eager %v", name, g, w)
		}
	}
	if compiled, total := dep.MethodCounts(); compiled != methods || total != methods {
		t.Fatalf("final counts = %d/%d, want %d/%d", compiled, total, methods, methods)
	}
	if cs := eng.CompileStats(); cs.Compilations != 0 || cs.LazyCompiles != methods {
		t.Fatalf("final stats = %+v, want 0 compilations / %d lazy compiles", cs, methods)
	}
}

// TestLazyEagerIdenticalAcrossTargets: on every registered target, a lazy
// deployment's result, simulated cycles and (once fully resolved) native
// code are bit-identical to the eager deployment of the same module.
func TestLazyEagerIdenticalAcrossTargets(t *testing.T) {
	eng := New()
	m, err := eng.Compile(sumsqSource)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range target.All() {
		eager, err := eng.Deploy(m, WithTarget(d.Arch))
		if err != nil {
			t.Fatal(err)
		}
		lazy, err := eng.Deploy(m, WithTarget(d.Arch), WithLazyCompile(true))
		if err != nil {
			t.Fatal(err)
		}
		if lazy.FromCache() {
			t.Fatalf("%s: lazy deploy shared the eager image (cache key must include lazy)", d.Arch)
		}
		we, err := eager.Run("sumsq", IntArg(200))
		if err != nil {
			t.Fatal(err)
		}
		wl, err := lazy.Run("sumsq", IntArg(200))
		if err != nil {
			t.Fatal(err)
		}
		if we != wl {
			t.Errorf("%s: result eager %v, lazy %v", d.Arch, we, wl)
		}
		if eager.Cycles() != lazy.Cycles() {
			t.Errorf("%s: cycles eager %d, lazy %d", d.Arch, eager.Cycles(), lazy.Cycles())
		}
		if eager.DisassembleNative() != lazy.DisassembleNative() {
			t.Errorf("%s: native code differs between eager and lazy", d.Arch)
		}
	}
}

// TestLazyConcurrentFirstCallsCompileOnce is the -race stress of the
// singleflight contract: several deployments sharing one lazy image race
// their first calls to the same methods; each method must compile exactly
// once fleet-wide and every caller must see the right result.
func TestLazyConcurrentFirstCallsCompileOnce(t *testing.T) {
	const methods = 6
	const deployments = 8
	eng := New()
	m, err := eng.Compile(lazyManySource(methods))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := New().Deploy(m)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]Value, methods)
	for i := range want {
		if want[i], err = ref.Run(fmt.Sprintf("lm%d", i), IntArg(40)); err != nil {
			t.Fatal(err)
		}
	}

	deps := make([]*Deployment, deployments)
	for i := range deps {
		if deps[i], err = eng.Deploy(m, WithLazyCompile(true)); err != nil {
			t.Fatal(err)
		}
		if i > 0 && !deps[i].FromCache() {
			t.Fatal("lazy deployments do not share one image")
		}
	}

	// One goroutine per deployment (a machine is single-goroutine by
	// contract); all race their first call to each method.
	var wg sync.WaitGroup
	start := make(chan struct{})
	for _, dp := range deps {
		wg.Add(1)
		go func(dp *Deployment) {
			defer wg.Done()
			<-start
			for i := 0; i < methods; i++ {
				got, err := dp.Run(fmt.Sprintf("lm%d", i), IntArg(40))
				if err != nil {
					t.Errorf("lm%d: %v", i, err)
					return
				}
				if got != want[i] {
					t.Errorf("lm%d = %v, want %v", i, got, want[i])
				}
			}
		}(dp)
	}
	close(start)
	wg.Wait()

	cs := eng.CompileStats()
	if cs.LazyCompiles != methods {
		t.Fatalf("%d lazy compiles for %d methods × %d racing deployments, want exactly %d",
			cs.LazyCompiles, methods, deployments, methods)
	}
	if cs.Compilations != 0 {
		t.Fatalf("lazy stress performed %d eager compilations, want 0", cs.Compilations)
	}
}

// TestLazyDiskMethodStore: replicas sharing a cache volume JIT each method
// at most once fleet-wide — a second engine over the same directory serves
// first calls from the per-method store instead of recompiling.
func TestLazyDiskMethodStore(t *testing.T) {
	const methods = 4
	dir := t.TempDir()
	first := New(WithDiskCache(dir))
	if err := first.DiskCacheErr(); err != nil {
		t.Fatal(err)
	}
	m, err := first.Compile(lazyManySource(methods))
	if err != nil {
		t.Fatal(err)
	}
	dep, err := first.Deploy(m, WithLazyCompile(true))
	if err != nil {
		t.Fatal(err)
	}
	want0, err := dep.Run("lm0", IntArg(60))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dep.Run("lm1", IntArg(60)); err != nil {
		t.Fatal(err)
	}
	wantCycles := dep.Cycles()
	if cs := first.CompileStats(); cs.LazyCompiles != 2 {
		t.Fatalf("first replica lazy compiles = %d, want 2", cs.LazyCompiles)
	}

	// The replica: a fresh engine over the same volume, the module re-loaded
	// from its byte stream. Its first calls to lm0/lm1 must be store hits.
	second := New(WithDiskCache(dir))
	m2, err := second.Load(m.Encoded())
	if err != nil {
		t.Fatal(err)
	}
	dep2, err := second.Deploy(m2, WithLazyCompile(true))
	if err != nil {
		t.Fatal(err)
	}
	got0, err := dep2.Run("lm0", IntArg(60))
	if err != nil {
		t.Fatal(err)
	}
	if got0 != want0 {
		t.Fatalf("replica lm0 = %v, want %v", got0, want0)
	}
	if _, err := dep2.Run("lm1", IntArg(60)); err != nil {
		t.Fatal(err)
	}
	if dep2.Cycles() != wantCycles {
		t.Errorf("replica cycles = %d, want %d (store hits must be bit-identical)", dep2.Cycles(), wantCycles)
	}
	cs := second.CompileStats()
	st := second.CacheStats()
	if cs.LazyCompiles != 0 || st.DiskHits != 2 {
		t.Fatalf("replica stats: %d lazy compiles / %d disk hits, want 0 / 2", cs.LazyCompiles, st.DiskHits)
	}
	if ms := dep2.CompileState()["lm0"]; ms.State != MethodReady || !ms.FromStore {
		t.Fatalf("replica lm0 state = %+v, want ready from store", ms)
	}

	// A method nobody compiled yet still JITs locally — and publishes.
	if _, err := dep2.Run("lm2", IntArg(60)); err != nil {
		t.Fatal(err)
	}
	if cs := second.CompileStats(); cs.LazyCompiles != 1 {
		t.Fatalf("replica lazy compiles after lm2 = %d, want 1", cs.LazyCompiles)
	}
	third := New(WithDiskCache(dir))
	m3, err := third.Load(m.Encoded())
	if err != nil {
		t.Fatal(err)
	}
	dep3, err := third.Deploy(m3, WithLazyCompile(true))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dep3.Run("lm2", IntArg(60)); err != nil {
		t.Fatal(err)
	}
	if cs := third.CompileStats(); cs.LazyCompiles != 0 {
		t.Fatalf("third replica recompiled lm2 (%d lazy compiles), want a store hit", cs.LazyCompiles)
	}
}

// TestLazyRunContextCancelled pins the API contract on the public surface: a
// cancelled lazy run fails with the context error, never compiles anything,
// and never leaves a half-patched dispatch table — the next run succeeds.
func TestLazyRunContextCancelled(t *testing.T) {
	eng := New()
	m, err := eng.Compile(sumsqSource)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := eng.Deploy(m, WithLazyCompile(true))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := dep.RunContext(ctx, "sumsq", IntArg(10)); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run = %v, want context.Canceled", err)
	}
	if compiled, _ := dep.MethodCounts(); compiled != 0 {
		t.Fatalf("cancelled run compiled %d methods, want 0", compiled)
	}
	got, err := dep.Run("sumsq", IntArg(10))
	if err != nil {
		t.Fatalf("run after cancellation: %v", err)
	}
	if got.I != 385 {
		t.Fatalf("sumsq(10) = %v, want 385", got)
	}
}

// TestEnsureCompiledMetricParity: after EnsureCompiled, a lazy deployment's
// code-derived statistics are bit-identical to the eager deployment's — the
// invariant the benchmark experiments (figure1, regalloc, codesize) rely on
// when the CI matrix runs them under SPLITVM_LAZY=1.
func TestEnsureCompiledMetricParity(t *testing.T) {
	src := lazyManySource(4)

	eagerEng := New()
	me, err := eagerEng.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	eager, err := eagerEng.Deploy(me)
	if err != nil {
		t.Fatal(err)
	}
	// EnsureCompiled on an eager deployment is a no-op.
	if err := eager.EnsureCompiled(context.Background()); err != nil {
		t.Fatal(err)
	}

	lazyEng := New()
	ml, err := lazyEng.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	lazy, err := lazyEng.Deploy(ml, WithLazyCompile(true))
	if err != nil {
		t.Fatal(err)
	}
	if n := lazy.NativeCodeBytes(); n != 0 {
		t.Fatalf("fresh lazy NativeCodeBytes = %d, want 0 before EnsureCompiled", n)
	}
	if err := lazy.EnsureCompiled(context.Background()); err != nil {
		t.Fatal(err)
	}
	if compiled, total := lazy.MethodCounts(); compiled != total {
		t.Fatalf("EnsureCompiled left counts %d/%d", compiled, total)
	}

	if e, l := eager.NativeCodeBytes(), lazy.NativeCodeBytes(); e != l {
		t.Fatalf("NativeCodeBytes: eager %d != lazy %d", e, l)
	}
	if e, l := eager.JITSteps(), lazy.JITSteps(); e != l {
		t.Fatalf("JITSteps: eager %d != lazy %d", e, l)
	}
	es, el, est := eager.SpillSummary()
	ls, ll, lst := lazy.SpillSummary()
	if es != ls || el != ll || est != lst {
		t.Fatalf("SpillSummary: eager (%d,%d,%d) != lazy (%d,%d,%d)", es, el, est, ls, ll, lst)
	}
	if e, l := eager.SpillWeight(), lazy.SpillWeight(); e != l {
		t.Fatalf("SpillWeight: eager %d != lazy %d", e, l)
	}

	// Same invariant across a link set: EnsureCompiled spans every unit.
	linkEng := New()
	util, mainMod := compileLinkPair(t, linkEng)
	lm, err := linkEng.Link(util, mainMod)
	if err != nil {
		t.Fatal(err)
	}
	eagerL, err := linkEng.DeployLinked(lm)
	if err != nil {
		t.Fatal(err)
	}
	lazyL, err := linkEng.DeployLinked(lm, WithLazyCompile(true))
	if err != nil {
		t.Fatal(err)
	}
	if err := lazyL.EnsureCompiled(context.Background()); err != nil {
		t.Fatal(err)
	}
	if e, l := eagerL.NativeCodeBytes(), lazyL.NativeCodeBytes(); e != l {
		t.Fatalf("linked NativeCodeBytes: eager %d != lazy %d", e, l)
	}
	if e, l := eagerL.JITSteps(), lazyL.JITSteps(); e != l {
		t.Fatalf("linked JITSteps: eager %d != lazy %d", e, l)
	}
	// EnsureCompiled counts as the first call everywhere: the run after it
	// must not recompile and must agree with eager.
	want, err := eagerL.Run("sumcubes", IntArg(10))
	if err != nil {
		t.Fatal(err)
	}
	got, err := lazyL.Run("sumcubes", IntArg(10))
	if err != nil {
		t.Fatal(err)
	}
	if got != want || got.I != 3025 {
		t.Fatalf("linked lazy sumcubes(10) = %v, want %v (3025)", got, want)
	}
}
