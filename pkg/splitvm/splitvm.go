// Package splitvm is the public API of the split-compilation toolchain: the
// reproduction of Cohen & Rohou's "Processor virtualization and split
// compilation" design, grown into a reusable engine.
//
// The toolchain has two halves, and the Engine exposes both:
//
//   - The offline stage (Compile / CompileContext) runs the developer-side
//     compiler: MiniC front end, constant folding, auto-vectorization to
//     portable builtins, lowering to verified CIL-style bytecode, split
//     register allocation analysis, and annotation attachment. Its output is
//     a Module — the deployable, annotated byte stream.
//
//   - The online stage (Deploy / DeployContext) runs the device-side
//     compiler for one target (internal/target): decode, verify, JIT
//     (mapping or scalarizing the portable vector builtins, consuming the
//     register allocation annotation) and instantiate a cycle-approximate
//     machine ready to Run entry points.
//
// Both stages are configured with functional options, typed by the stage
// they configure: a CompileOption (WithVectorize, WithAnnotations, ...)
// is accepted by Compile, a DeployOption (WithTarget, WithRegAllocMode,
// WithLazyCompile, ...) by Deploy, and a SharedOption (WithProfile) by
// both — passing an option to the wrong stage is a compile error, not a
// silent no-op. Every option also satisfies the root Option interface,
// which is what New accepts: options passed to New become engine-wide
// defaults; options passed to a single call override them for that call.
//
// Context plumbing follows one convention across the whole surface, stated
// here once: the *Context variant (CompileContext, DeployContext,
// DeployLinkedContext, RunContext) is the canonical method, and the short
// name is a thin wrapper over context.Background(). Cancellation is safe
// mid-flight by construction — a cancelled deploy leaves the shared code
// cache consistent (the in-flight compilation completes for the next
// caller), and a cancelled lazy run never leaves a half-patched dispatch
// table: the method stays a stub and the next call compiles it.
//
// Deployments are eager by default: every method JIT-compiles at deploy
// time. WithLazyCompile(true) installs per-method stubs instead; each
// method compiles on its first call (singleflight per image and method),
// producing code bit-identical to the eager build — results and simulated
// cycles never depend on compilation timing — and sharing per-method code
// fleet-wide through the disk cache. Programs authored as several modules
// compile with CompileModules, validate with Link and deploy with
// DeployLinked; cross-module calls resolve module-by-content-hash at link
// time, so a missing or mismatched dependency is a Link error, never a
// first-call panic.
//
// The engine maintains a concurrency-safe code cache keyed by (module
// content hash, target description, JIT options): repeated deployments of
// the same module on the same kind of core reuse the JIT-compiled native
// program and only pay for a fresh machine. Concurrent deployments of the
// same key JIT-compile once; the losers of the race wait for the winner's
// image. This is the first scaling primitive toward serving many concurrent
// deployment requests from one engine.
//
// A minimal round trip:
//
//	eng := splitvm.New(splitvm.WithTarget(target.X86SSE))
//	mod, err := eng.Compile(source)
//	dep, err := eng.Deploy(mod)
//	res, err := dep.Run("sumsq", splitvm.IntArg(1000))
package splitvm

import (
	"container/list"
	"context"
	"crypto/sha256"
	"fmt"
	"os"
	"sync"

	"repro/internal/anno"
	"repro/internal/cil"
	"repro/internal/core"
	"repro/internal/diskcache"
	"repro/internal/jit"
	"repro/internal/kernels"
	"repro/internal/target"
)

// Engine unifies the offline and online compilation stages behind one
// configuration and one shared code cache. An Engine is safe for concurrent
// use by multiple goroutines; the zero value is not usable — construct
// engines with New.
type Engine struct {
	defaults []Option

	// disk is the persistent cache layer (WithDiskCache), nil when not
	// configured; diskErr records why opening the store failed — the
	// engine then runs memory-only, and DiskCacheErr surfaces the reason.
	disk    *diskcache.Store
	diskErr error

	mu    sync.Mutex
	cache map[cacheKey]*cacheEntry
	// lru orders the completed cache entries, most recently used first;
	// in-flight compilations live only in the map and are never evicted.
	lru *list.List
	// maxEntries bounds the number of completed images kept (0 = unbounded).
	maxEntries int
	hits       int64
	misses     int64
	evictions  int64
	// diskHits counts deployments served from the persistent layer after a
	// memory miss (each is also counted in hits: the caller experienced a
	// cache hit, just a slower one).
	diskHits int64

	// compilations counts completed JIT compilations (cache hits excluded);
	// annoFallbacks counts the subset whose load-time annotation
	// negotiation degraded at least one section to online-only compilation;
	// compileNanos accumulates the wall-clock time those compilations took.
	compilations  int64
	annoFallbacks int64
	compileNanos  int64
	// lazyCompiles counts methods JIT-compiled on first call by lazy
	// deployments (fleet-store hits excluded); their wall-clock time also
	// accumulates into compileNanos.
	lazyCompiles int64
}

// New returns an engine. The options become the engine's defaults; every
// Compile/Deploy call starts from them and applies its own options on top.
//
// The SPLITVM_DISK_CACHE environment variable names a persistent cache
// directory applied to every engine that was not explicitly configured
// with WithDiskCache — the process-wide twin of that option, like
// SPLITVM_TIER and SPLITVM_COMPILE_WORKERS. CI uses it to prove that
// enabling the disk cache never moves a gated metric.
func New(defaults ...Option) *Engine {
	e := &Engine{
		defaults: append([]Option(nil), defaults...),
		cache:    make(map[cacheKey]*cacheEntry),
		lru:      list.New(),
	}
	cfg := e.config(nil)
	e.maxEntries = cfg.cacheSize
	if cfg.diskDir == "" {
		cfg.diskDir = os.Getenv("SPLITVM_DISK_CACHE")
	}
	if cfg.diskDir != "" {
		e.disk, e.diskErr = diskcache.Open(cfg.diskDir)
	}
	return e
}

// DiskCacheErr reports why the persistent cache layer requested with
// WithDiskCache could not be opened (nil when it opened, or when none was
// requested). An engine with a failed disk layer still works — it caches in
// memory only — so callers that require durability must check explicitly.
func (e *Engine) DiskCacheErr() error { return e.diskErr }

// config resolves the effective configuration for one call. The three
// variants differ only in the option type they accept; New's defaults are
// always applied first.
func (e *Engine) config(opts []Option) config {
	cfg := defaultConfig()
	for _, o := range e.defaults {
		o.apply(&cfg)
	}
	for _, o := range opts {
		o.apply(&cfg)
	}
	return cfg
}

func (e *Engine) compileConfig(opts []CompileOption) config {
	cfg := e.config(nil)
	for _, o := range opts {
		o.apply(&cfg)
	}
	return cfg
}

func (e *Engine) deployConfig(opts []DeployOption) config {
	cfg := e.config(nil)
	for _, o := range opts {
		o.apply(&cfg)
	}
	return cfg
}

// offlineOptions maps the resolved config onto the core offline compiler.
func (c *config) offlineOptions() core.OfflineOptions {
	return core.OfflineOptions{
		ModuleName:                 c.moduleName,
		DisableVectorize:           !c.vectorize,
		DisableRegAllocAnnotations: !c.regAllocAnnotations,
		DisableAnnotations:         !c.annotations,
		DisableConstFold:           !c.constFold,
		AnnotationVersion:          c.annotationVersion,
	}
}

// jitOptions maps the resolved config onto the online compiler.
func (c *config) jitOptions() jit.Options {
	return jit.Options{
		RegAlloc:             c.regAlloc,
		ForceScalarize:       c.forceScalarize,
		MinAnnotationVersion: c.minAnnoVersion,
		CompileWorkers:       c.compileWorkers,
	}
}

// Compile runs the offline stage on MiniC source text and returns the
// deployable module.
func (e *Engine) Compile(source string, opts ...CompileOption) (*Module, error) {
	return e.CompileContext(context.Background(), source, opts...)
}

// CompileContext is Compile with cancellation between pipeline stages.
func (e *Engine) CompileContext(ctx context.Context, source string, opts ...CompileOption) (*Module, error) {
	cfg := e.compileConfig(opts)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res, err := core.CompileOffline(source, cfg.offlineOptions())
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := cfg.attachProfile(res); err != nil {
		return nil, err
	}
	return newCompiledModule(res)
}

// attachProfile embeds a WithProfile profile into the compiled module as a
// versioned annotation (the compile-time half of the shared option) and
// refreshes the encoded byte stream. Profiles only exist in the enveloped
// schema, so the attachment always uses the current version regardless of
// WithAnnotationVersion; WithAnnotations(false) suppresses it like every
// other annotation.
func (c *config) attachProfile(res *core.OfflineResult) error {
	if c.profile == nil || !c.annotations {
		return nil
	}
	if err := anno.AttachProfileV(res.Module, c.profile, anno.CurrentVersion); err != nil {
		return err
	}
	res.Encoded = cil.Encode(res.Module)
	res.AnnotationBytes = anno.TotalAnnotationBytes(res.Module)
	return nil
}

// CompileKernel compiles one named benchmark kernel (see Kernels) with the
// kernel's name as the default module name.
func (e *Engine) CompileKernel(name string, opts ...CompileOption) (*Module, Kernel, error) {
	k, err := kernels.Get(name)
	if err != nil {
		return nil, Kernel{}, err
	}
	m, err := e.Compile(k.Source, append([]CompileOption{WithModuleName(name)}, opts...)...)
	return m, k, err
}

// Load decodes and verifies an encoded module (the device-side entry point
// for byte streams produced elsewhere, e.g. read from a file).
func (e *Engine) Load(encoded []byte) (*Module, error) {
	return loadModule(encoded)
}

// Deploy runs the online stage: JIT-compile the module for the configured
// target (through the engine's code cache) and instantiate a machine. With
// WithLazyCompile the whole-module JIT is replaced by per-method stubs that
// compile on first call; everything else — decode, verify, cache identity —
// is unchanged, and the deployment behaves identically apart from when
// compile time is paid.
func (e *Engine) Deploy(m *Module, opts ...DeployOption) (*Deployment, error) {
	return e.DeployContext(context.Background(), m, opts...)
}

// DeployContext is Deploy with cancellation. A caller whose context expires
// while another goroutine JIT-compiles the shared image returns early; the
// compilation itself finishes and stays cached. On lazy deployments the
// machine threads each Run's context into any first-call compilation it
// triggers, so a cancelled run aborts the resolution before anything is
// patched — a later call retries cleanly.
func (e *Engine) DeployContext(ctx context.Context, m *Module, opts ...DeployOption) (*Deployment, error) {
	if m == nil {
		return nil, fmt.Errorf("splitvm: Deploy needs a module (did Compile fail?)")
	}
	if len(m.mod.Imports) > 0 {
		return nil, fmt.Errorf("splitvm: module %q imports other modules; use Engine.Link and DeployLinked so its cross-module calls resolve at link time", m.mod.Name)
	}
	cfg := e.deployConfig(opts)
	tgt, err := cfg.targetDesc()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	jopts := cfg.jitOptions()
	if cfg.noCache {
		priv := *tgt // the image outlives the call; never alias the caller's descriptor
		img, err := e.buildImage(m, &priv, jopts, cfg.lazyCompile, cacheKey{})
		if err != nil {
			return nil, err
		}
		d := img.Instantiate()
		cfg.applyTiering(d)
		cfg.applyGovernor(d)
		return &Deployment{d: d}, nil
	}
	img, hit, diskHit, err := e.image(ctx, m, tgt, jopts, cfg.lazyCompile)
	if err != nil {
		return nil, err
	}
	d := img.Instantiate()
	cfg.applyTiering(d)
	cfg.applyGovernor(d)
	return &Deployment{d: d, fromCache: hit, fromDisk: diskHit}, nil
}

// buildImage constructs one image outside the cache lookup: eager (counted
// as a compilation) or lazy (counted per method as first calls arrive). The
// key wires lazy images to the per-method disk store; the zero key — the
// no-cache path — leaves them store-less.
func (e *Engine) buildImage(m *Module, tgt *target.Desc, jopts jit.Options, lazy bool, key cacheKey) (*core.Image, error) {
	if !lazy {
		img, err := core.ImageFromVerifiedModule(m.mod, tgt, jopts)
		if err != nil {
			return nil, err
		}
		e.countCompilation(img)
		return img, nil
	}
	img, err := core.LazyImageFromVerifiedModule(m.mod, tgt, jopts)
	if err != nil {
		return nil, err
	}
	if e.disk != nil && key != (cacheKey{}) {
		img.SetMethodStore(e.methodStore(key))
	}
	img.OnLazyCompile(func(method string, nanos int64, fromStore bool) {
		e.mu.Lock()
		if fromStore {
			e.diskHits++
		} else {
			e.lazyCompiles++
			e.compileNanos += nanos
		}
		e.mu.Unlock()
	})
	return img, nil
}

// cacheKey identifies one JIT compilation. The target description is keyed
// by value, so two descriptors that differ in any machine parameter (for
// example a WithIntRegs-resized register file) never share native code.
// CompileWorkers is deliberately absent: the parallel compile pipeline
// produces bit-identical programs for every worker count, so keying on it
// would only duplicate images.
type cacheKey struct {
	hash           [sha256.Size]byte
	desc           target.Desc
	regAlloc       jit.RegAllocMode
	forceScalarize bool
	minAnnoVersion uint32
	// lazy separates lazily materialized images from eager ones: the native
	// code is bit-identical method by method, but an eager image is complete
	// at deploy time while a lazy one fills in as methods are first called,
	// so the two must never be the same cache entry.
	lazy bool
}

// cacheEntry is one cached (or in-flight) JIT compilation. ready is closed
// once img/err are final.
type cacheEntry struct {
	key   cacheKey
	ready chan struct{}
	img   *core.Image
	err   error
	// elem is the entry's position in the engine's LRU list, nil while the
	// compilation is in flight or after eviction. Guarded by Engine.mu.
	elem *list.Element
	// persisted records that the image is durably in the disk store, so an
	// LRU eviction can drop it from memory without losing it; entries that
	// missed their write-through are demoted at eviction time instead.
	// Written only by the goroutine that owns the compilation or eviction.
	persisted bool
}

// image returns the JIT-compiled image for (module, target, options),
// building it at most once per key. The first boolean reports whether the
// image came from the cache (joining an in-flight compilation counts as a
// hit); the second whether it was materialized from the persistent layer.
func (e *Engine) image(ctx context.Context, m *Module, tgt *target.Desc, jopts jit.Options, lazy bool) (*core.Image, bool, bool, error) {
	key := cacheKey{
		hash:           m.hash,
		desc:           *tgt,
		regAlloc:       jopts.RegAlloc,
		forceScalarize: jopts.ForceScalarize,
		minAnnoVersion: jopts.MinAnnotationVersion,
		lazy:           lazy,
	}
	// The cached image must describe exactly the key it is stored under:
	// build and instantiate from the key's private copy of the descriptor,
	// never the caller's pointer, so later mutation of a WithTargetDesc
	// argument cannot corrupt cached deployments.
	tgt = &key.desc

	e.mu.Lock()
	if ent, ok := e.cache[key]; ok {
		if ent.elem != nil {
			e.lru.MoveToFront(ent.elem)
		}
		e.mu.Unlock()
		select {
		case <-ent.ready:
		case <-ctx.Done():
			return nil, false, false, ctx.Err()
		}
		if ent.err != nil {
			return nil, false, false, ent.err
		}
		// Count the hit only once the deployment is actually served from
		// the shared image; cancelled or failed waits are neither hits nor
		// misses.
		e.mu.Lock()
		e.hits++
		e.mu.Unlock()
		return ent.img, true, false, nil
	}
	ent := &cacheEntry{key: key, ready: make(chan struct{})}
	e.cache[key] = ent
	e.mu.Unlock()

	// Memory missed; the persistent layer gets the next word. A disk hit is
	// a cache hit for the caller (same image the original compilation
	// produced, no JIT work) — just a slower one — and is promoted into the
	// LRU like any completed entry. Anything wrong with the disk copy
	// (absent, truncated, bit-flipped, stale schema) falls through to a
	// plain recompilation: the disk is advisory, never authoritative. Lazy
	// images skip the whole-image layer entirely: they persist method by
	// method through the method store instead.
	diskHit := false
	if e.disk != nil && !lazy {
		if img, ok := e.loadFromDisk(key, tgt, jopts, m); ok {
			ent.img = img
			ent.persisted = true
			diskHit = true
		}
	}
	if !diskHit {
		ent.img, ent.err = e.buildImage(m, tgt, jopts, lazy, key)
	}
	close(ent.ready)
	if ent.err == nil && !diskHit {
		if lazy {
			// A lazy image is never gob-encoded whole (it may be partial at
			// any moment); marking it persisted lets an LRU eviction drop it
			// without a pointless demotion write.
			ent.persisted = true
		} else if e.disk != nil {
			// Write-through, outside the engine lock: restarts are warm and
			// replicas sharing the volume skip this compilation entirely.
			ent.persisted = e.persistImage(key, ent.img)
		}
	}
	// demoted collects evicted entries whose write-through never landed;
	// they are persisted after the lock is released (disk I/O under the
	// engine mutex would stall every concurrent deployment).
	var demoted []*cacheEntry
	e.mu.Lock()
	switch {
	case ent.err != nil:
		// Do not cache failures: a later attempt (e.g. after Register
		// replaced a target) should retry. Delete only our own entry — a
		// concurrent ClearCache may already have installed a new one.
		if e.cache[key] == ent {
			delete(e.cache, key)
		}
		e.misses++
	case e.cache[key] == ent:
		if diskHit {
			e.hits++
			e.diskHits++
		} else {
			e.misses++
		}
		// Publish to the LRU list and enforce the size bound. Only completed
		// entries are evictable; an in-flight compilation is pinned by its
		// waiters.
		ent.elem = e.lru.PushFront(ent)
		for e.maxEntries > 0 && e.lru.Len() > e.maxEntries {
			old := e.lru.Remove(e.lru.Back()).(*cacheEntry)
			old.elem = nil
			if e.cache[old.key] == old {
				delete(e.cache, old.key)
			}
			e.evictions++
			if e.disk != nil && !old.persisted {
				demoted = append(demoted, old)
			}
		}
	default:
		// A concurrent ClearCache superseded the entry; the caller still
		// gets the image it built or loaded.
		if !diskHit {
			e.misses++
		}
	}
	e.mu.Unlock()
	for _, old := range demoted {
		old.persisted = e.persistImage(old.key, old.img)
	}
	if ent.err != nil {
		return nil, false, false, ent.err
	}
	return ent.img, diskHit, diskHit, nil
}

// countCompilation records one completed JIT compilation and its
// annotation-negotiation outcome in the engine counters.
func (e *Engine) countCompilation(img *core.Image) {
	e.mu.Lock()
	e.compilations++
	e.compileNanos += img.CompileNanos
	if img.AnnotationFallbacks > 0 {
		e.annoFallbacks++
	}
	e.mu.Unlock()
}

// CompileStats reports JIT compilation outcomes over the engine's lifetime.
type CompileStats struct {
	// Compilations counts completed JIT compilations (deployments served
	// from the code cache are not re-counted).
	Compilations int64 `json:"compilations"`
	// FallbackCompilations counts compilations in which at least one
	// annotation section could not be consumed — malformed, from the
	// future, or below WithMinAnnotationVersion — and degraded to
	// online-only compilation. Note the unit: compilations, not sections —
	// CompileReport.AnnotationFallbacks counts the individual sections of
	// one compilation, so the two are not expected to add up.
	FallbackCompilations int64 `json:"fallback_compilations"`
	// CompileNanosTotal is the cumulative wall-clock time of whole-module
	// compilations plus first-call method compilations: divided by
	// Compilations it gives the average online compile cost a cache miss
	// pays on an eager engine.
	CompileNanosTotal int64 `json:"compile_nanos_total"`
	// LazyCompiles counts methods JIT-compiled on first call by lazy
	// deployments. Methods materialized from the fleet-wide per-method disk
	// store are excluded (they cost no JIT work here) — they show up in
	// CacheStats.DiskHits instead. A lazy deployment itself never increments
	// Compilations: it performs zero up-front compilations by construction.
	LazyCompiles int64 `json:"lazy_compiles"`
}

// CompileStats returns a snapshot of the engine's compilation counters.
func (e *Engine) CompileStats() CompileStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return CompileStats{
		Compilations:         e.compilations,
		FallbackCompilations: e.annoFallbacks,
		CompileNanosTotal:    e.compileNanos,
		LazyCompiles:         e.lazyCompiles,
	}
}

// CacheStats reports code cache effectiveness.
type CacheStats struct {
	// Hits counts deployments served from a cached (or in-flight) image.
	Hits int64 `json:"hits"`
	// Misses counts deployments that had to JIT-compile.
	Misses int64 `json:"misses"`
	// Evictions counts completed images dropped by the LRU size bound
	// (WithCacheSize); always zero on an unbounded engine.
	Evictions int64 `json:"evictions"`
	// Entries is the number of native images currently cached.
	Entries int `json:"entries"`
	// MaxEntries is the configured size bound (0 = unbounded).
	MaxEntries int `json:"max_entries"`
	// DiskHits counts deployments served from the persistent layer after a
	// memory miss (each is also counted in Hits); always zero without
	// WithDiskCache.
	DiskHits int64 `json:"disk_hits,omitempty"`
	// Disk reports the persistent store's own traffic (entries, bytes,
	// corrupt files degraded to recompilation); nil without WithDiskCache.
	Disk *DiskCacheStats `json:"disk,omitempty"`
}

// CacheStats returns a snapshot of the engine's code cache counters.
// Entries counts completed images only; in-flight compilations are excluded.
func (e *Engine) CacheStats() CacheStats {
	e.mu.Lock()
	st := CacheStats{
		Hits:       e.hits,
		Misses:     e.misses,
		Evictions:  e.evictions,
		Entries:    e.lru.Len(),
		MaxEntries: e.maxEntries,
		DiskHits:   e.diskHits,
	}
	e.mu.Unlock()
	if e.disk != nil {
		ds := e.disk.Stats()
		st.Disk = &ds
	}
	return st
}

// ClearCache drops every cached native image (counters are kept; a clear is
// not counted as eviction). In-flight compilations finish and are delivered
// to their waiters but are not re-cached.
func (e *Engine) ClearCache() {
	e.mu.Lock()
	defer e.mu.Unlock()
	for elem := e.lru.Front(); elem != nil; elem = elem.Next() {
		elem.Value.(*cacheEntry).elem = nil
	}
	e.cache = make(map[cacheKey]*cacheEntry)
	e.lru.Init()
}
