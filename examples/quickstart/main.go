// Quickstart: compile a MiniC function once to portable bytecode, then run
// the very same byte stream on three different simulated processors — the
// elevator pitch of processor virtualization.
package main

import (
	"fmt"
	"log"

	"repro/internal/target"
	"repro/pkg/splitvm"
)

const source = `
// Sum of squares 1..n, written once, deployed everywhere.
i64 sumsq(i32 n) {
    i64 s = 0;
    for (i32 i = 1; i <= n; i++) {
        s = s + (i64) (i * i);
    }
    return s;
}
`

func main() {
	eng := splitvm.New()

	// Offline step (developer workstation): front end, optimizer,
	// annotations, bytecode encoding.
	mod, err := eng.Compile(source, splitvm.WithModuleName("quickstart"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offline: %d bytes of deployable bytecode, %d bytes of annotations\n\n",
		mod.Stats().EncodedBytes, mod.Stats().AnnotationBytes)

	// Online step (device): decode, verify, JIT for whatever core is there.
	for _, arch := range []target.Arch{target.X86SSE, target.Sparc, target.MCU} {
		dep, err := eng.Deploy(mod, splitvm.WithTarget(arch))
		if err != nil {
			log.Fatal(err)
		}
		res, err := dep.Run("sumsq", splitvm.IntArg(1000))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s sumsq(1000) = %-12d %8d cycles, %4d B native code\n",
			dep.Target().Name, res.I, dep.Cycles(), dep.NativeCodeBytes())
	}
}
