// Quickstart: compile a MiniC function once to portable bytecode, then run
// the very same byte stream on three different simulated processors — the
// elevator pitch of processor virtualization.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/jit"
	"repro/internal/sim"
	"repro/internal/target"
)

const source = `
// Sum of squares 1..n, written once, deployed everywhere.
i64 sumsq(i32 n) {
    i64 s = 0;
    for (i32 i = 1; i <= n; i++) {
        s = s + (i64) (i * i);
    }
    return s;
}
`

func main() {
	// Offline step (developer workstation): front end, optimizer,
	// annotations, bytecode encoding.
	offline, err := core.CompileOffline(source, core.OfflineOptions{ModuleName: "quickstart"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offline: %d bytes of deployable bytecode, %d bytes of annotations\n\n",
		len(offline.Encoded), offline.AnnotationBytes)

	// Online step (device): decode, verify, JIT for whatever core is there.
	for _, arch := range []target.Arch{target.X86SSE, target.Sparc, target.MCU} {
		tgt := target.MustLookup(arch)
		dep, err := core.Deploy(offline.Encoded, tgt, jit.Options{RegAlloc: jit.RegAllocSplit})
		if err != nil {
			log.Fatal(err)
		}
		res, err := dep.Run("sumsq", sim.IntArg(1000))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s sumsq(1000) = %-12d %8d cycles, %4d B native code\n",
			tgt.Name, res.I, dep.Cycles(), dep.NativeCodeBytes())
	}
}
