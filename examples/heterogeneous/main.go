// Heterogeneous: the Section 3 scenario. One portable module containing a
// control-heavy checksum and a numerical kernel is deployed on a Cell-like
// chip (PowerPC host + SPU vector accelerators). The runtime uses the
// hardware-requirement annotations to keep control code on the host and
// offload the numerical kernel to an accelerator.
package main

import (
	"fmt"
	"log"

	"repro/pkg/splitvm"
)

func main() {
	eng := splitvm.New()

	var source string
	for _, k := range splitvm.Kernels() {
		if k.Name == "checksum" || k.Name == "vecadd_fp" {
			source += k.Source
		}
	}
	mod, err := eng.Compile(source, splitvm.WithModuleName("media-app"))
	if err != nil {
		log.Fatal(err)
	}
	sys := splitvm.CellLike()
	fmt.Printf("system %s: host %s + %d vector accelerators\n\n", sys.Name, sys.Host.Desc.Name, len(sys.Accel))

	for _, policy := range []splitvm.Policy{splitvm.HostOnly, splitvm.Annotated} {
		rt, err := eng.DeployHetero(sys, mod, policy)
		if err != nil {
			log.Fatal(err)
		}
		var total int64

		// Control-heavy pass over a small header buffer.
		header := splitvm.NewArray(splitvm.U8, 512)
		for i := 0; i < header.Len(); i++ {
			header.SetInt(i, int64(i*37%256))
		}
		cres, err := rt.Call("checksum", splitvm.ArrayArg(header), splitvm.ScalarArg(splitvm.I32, splitvm.IntArg(512)))
		if err != nil {
			log.Fatal(err)
		}
		total += cres.Cycles

		// Numerical pass over the sample buffer.
		const n = 4096
		c := splitvm.NewArray(splitvm.F64, n)
		a := splitvm.NewArray(splitvm.F64, n)
		b := splitvm.NewArray(splitvm.F64, n)
		for i := 0; i < n; i++ {
			a.SetFloat(i, float64(i%21))
			b.SetFloat(i, float64(i%13))
		}
		nres, err := rt.Call("vecadd",
			splitvm.ArrayArg(c), splitvm.ArrayArg(a), splitvm.ArrayArg(b),
			splitvm.ScalarArg(splitvm.I32, splitvm.IntArg(n)))
		if err != nil {
			log.Fatal(err)
		}
		total += nres.Cycles

		fmt.Printf("policy %-20s checksum on %-5s (%d)   vecadd on %-5s   total %d host cycles\n",
			policy, cres.CoreName, cres.Result.I, nres.CoreName, total)
	}
	fmt.Println("\nThe same byte stream ran in both configurations; only the run-time mapping changed.")
	fmt.Printf("code cache after both deployments: %+v\n", eng.CacheStats())
}
