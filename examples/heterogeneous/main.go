// Heterogeneous: the Section 3 scenario. One portable module containing a
// control-heavy checksum and a numerical kernel is deployed on a Cell-like
// chip (PowerPC host + SPU vector accelerators). The runtime uses the
// hardware-requirement annotations to keep control code on the host and
// offload the numerical kernel to an accelerator.
package main

import (
	"fmt"
	"log"

	"repro/internal/cil"
	"repro/internal/core"
	"repro/internal/hetero"
	"repro/internal/kernels"
	"repro/internal/sim"
	"repro/internal/vm"
)

func main() {
	source := kernels.MustGet("checksum").Source + kernels.MustGet("vecadd_fp").Source
	offline, err := core.CompileOffline(source, core.OfflineOptions{ModuleName: "media-app"})
	if err != nil {
		log.Fatal(err)
	}
	sys := hetero.CellLike()
	fmt.Printf("system %s: host %s + %d vector accelerators\n\n", sys.Name, sys.Host.Desc.Name, len(sys.Accel))

	for _, policy := range []hetero.Policy{hetero.HostOnly, hetero.Annotated} {
		rt, err := hetero.NewRuntime(sys, offline.Encoded, policy)
		if err != nil {
			log.Fatal(err)
		}
		var total int64

		// Control-heavy pass over a small header buffer.
		header := vm.NewArray(cil.U8, 512)
		for i := 0; i < header.Len(); i++ {
			header.SetInt(i, int64(i*37%256))
		}
		cres, err := rt.Call("checksum", hetero.ArrayArg(header), hetero.ScalarArg(cil.I32, sim.IntArg(512)))
		if err != nil {
			log.Fatal(err)
		}
		total += cres.Cycles

		// Numerical pass over the sample buffer.
		const n = 4096
		c := vm.NewArray(cil.F64, n)
		a := vm.NewArray(cil.F64, n)
		b := vm.NewArray(cil.F64, n)
		for i := 0; i < n; i++ {
			a.SetFloat(i, float64(i%21))
			b.SetFloat(i, float64(i%13))
		}
		nres, err := rt.Call("vecadd",
			hetero.ArrayArg(c), hetero.ArrayArg(a), hetero.ArrayArg(b),
			hetero.ScalarArg(cil.I32, sim.IntArg(n)))
		if err != nil {
			log.Fatal(err)
		}
		total += nres.Cycles

		fmt.Printf("policy %-20s checksum on %-5s (%d)   vecadd on %-5s   total %d host cycles\n",
			policy, cres.CoreName, cres.Result.I, nres.CoreName, total)
	}
	fmt.Println("\nThe same byte stream ran in both configurations; only the run-time mapping changed.")
}
