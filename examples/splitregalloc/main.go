// Split register allocation: the Section 4 example. The offline compiler
// records portable spill priorities in an annotation; on an embedded core
// with a tiny register file, the annotation-driven JIT keeps the hot loop
// variables in registers where the plain online allocator spills them.
package main

import (
	"fmt"
	"log"

	"repro/internal/target"
	"repro/pkg/splitvm"
)

const source = `
i32 filter(i32 n, i32 seed) {
    i32 cfg0 = seed + 1;
    i32 cfg1 = seed + 2;
    i32 cfg2 = seed + 3;
    i32 cfg3 = seed + 4;
    i32 cfg4 = seed + 5;
    i32 cfg5 = seed + 6;
    i32 acc = 0;
    i32 state = seed;
    for (i32 i = 0; i < n; i++) {
        state = state * 1103515245 + 12345;
        acc = acc + (state >> 16) % 64 + i;
    }
    return acc + cfg0 + cfg1 + cfg2 + cfg3 + cfg4 + cfg5;
}
`

func main() {
	eng := splitvm.New()
	mod, err := eng.Compile(source, splitvm.WithModuleName("filter"))
	if err != nil {
		log.Fatal(err)
	}
	tgt := target.MustLookup(target.MCU).WithIntRegs(5)
	fmt.Printf("target: %s\n", tgt.Name)
	fmt.Printf("annotation bytes carried in the bytecode: %d\n\n", mod.Stats().AnnotationBytes)

	fmt.Printf("%-22s %14s %18s %16s %14s\n", "allocator", "spilled vars", "spill instrs", "dynamic spills", "total cycles")
	for _, mode := range []splitvm.RegAllocMode{splitvm.RegAllocOnline, splitvm.RegAllocSplit, splitvm.RegAllocOptimal} {
		dep, err := eng.Deploy(mod, splitvm.WithTargetDesc(tgt), splitvm.WithRegAllocMode(mode))
		if err != nil {
			log.Fatal(err)
		}
		if _, err := dep.Run("filter", splitvm.IntArg(10000), splitvm.IntArg(7)); err != nil {
			log.Fatal(err)
		}
		slots, loads, stores := dep.SpillSummary()
		stats := dep.Stats()
		fmt.Printf("%-22s %14d %18d %16d %14d\n",
			mode, slots, loads+stores, stats.SpillLoads+stats.SpillStores, dep.Cycles())
	}
	fmt.Println("\nThe split allocator reads the offline priorities instead of guessing from scan order,")
	fmt.Println("so the loop-carried variables stay in registers and spill traffic drops.")
}
