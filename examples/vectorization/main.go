// Vectorization: the split auto-vectorization scenario of Table 1 on a
// single kernel. The offline compiler vectorizes saxpy once with portable
// builtins; the x86 JIT maps them to its SIMD unit while the UltraSparc and
// PowerPC JITs scalarize them — same bytecode, three different machines.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/jit"
	"repro/internal/kernels"
	"repro/internal/target"
)

func main() {
	const n = 4096
	kernelName := "saxpy_fp"

	scalar, k, err := core.CompileKernel(kernelName, core.OfflineOptions{DisableVectorize: true})
	if err != nil {
		log.Fatal(err)
	}
	vector, _, err := core.CompileKernel(kernelName, core.OfflineOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("kernel %s: %s\n", k.Name, k.Description)
	fmt.Printf("scalar bytecode: %d bytes, vectorized bytecode: %d bytes (+%d bytes of annotations)\n\n",
		len(scalar.Encoded), len(vector.Encoded), vector.AnnotationBytes)

	inputs, err := kernels.NewInputs(kernelName, n, 1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-14s %14s %14s %10s %s\n", "target", "scalar cycles", "vector cycles", "speedup", "how the JIT lowered the builtins")
	for _, tgt := range target.Table1() {
		depS, err := core.Deploy(scalar.Encoded, tgt, jit.Options{RegAlloc: jit.RegAllocSplit})
		if err != nil {
			log.Fatal(err)
		}
		runS, err := depS.RunKernel(k, inputs)
		if err != nil {
			log.Fatal(err)
		}
		depV, err := core.Deploy(vector.Encoded, tgt, jit.Options{RegAlloc: jit.RegAllocSplit})
		if err != nil {
			log.Fatal(err)
		}
		runV, err := depV.RunKernel(k, inputs)
		if err != nil {
			log.Fatal(err)
		}
		how := "scalarized (no SIMD unit)"
		if depV.Program.Func(k.Entry).Stats.VectorLowered > 0 {
			how = "mapped to the 128-bit vector unit"
		}
		fmt.Printf("%-14s %14d %14d %9.2fx %s\n",
			tgt.Name, runS.Cycles, runV.Cycles, float64(runS.Cycles)/float64(runV.Cycles), how)
	}
}
