// Vectorization: the split auto-vectorization scenario of Table 1 on a
// single kernel. The offline compiler vectorizes saxpy once with portable
// builtins; the x86 JIT maps them to its SIMD unit while the UltraSparc and
// PowerPC JITs scalarize them — same bytecode, three different machines.
package main

import (
	"fmt"
	"log"

	"repro/internal/target"
	"repro/pkg/splitvm"
)

func main() {
	const n = 4096
	kernelName := "saxpy_fp"
	eng := splitvm.New()

	scalar, k, err := eng.CompileKernel(kernelName, splitvm.WithVectorize(false))
	if err != nil {
		log.Fatal(err)
	}
	vector, _, err := eng.CompileKernel(kernelName)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("kernel %s: %s\n", k.Name, k.Description)
	fmt.Printf("scalar bytecode: %d bytes, vectorized bytecode: %d bytes (+%d bytes of annotations)\n\n",
		scalar.Stats().EncodedBytes, vector.Stats().EncodedBytes, vector.Stats().AnnotationBytes)

	inputs, err := splitvm.NewInputs(kernelName, n, 1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-14s %14s %14s %10s %s\n", "target", "scalar cycles", "vector cycles", "speedup", "how the JIT lowered the builtins")
	for _, tgt := range target.Table1() {
		depS, err := eng.Deploy(scalar, splitvm.WithTarget(tgt.Arch))
		if err != nil {
			log.Fatal(err)
		}
		runS, err := depS.RunKernel(k, inputs)
		if err != nil {
			log.Fatal(err)
		}
		depV, err := eng.Deploy(vector, splitvm.WithTarget(tgt.Arch))
		if err != nil {
			log.Fatal(err)
		}
		runV, err := depV.RunKernel(k, inputs)
		if err != nil {
			log.Fatal(err)
		}
		how := "scalarized (no SIMD unit)"
		if depV.UsedSIMD(k.Entry) {
			how = "mapped to the 128-bit vector unit"
		}
		fmt.Printf("%-14s %14d %14d %9.2fx %s\n",
			tgt.Name, runS.Cycles, runV.Cycles, float64(runS.Cycles)/float64(runV.Cycles), how)
	}
}
