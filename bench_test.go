// Package repro's top-level benchmarks regenerate every evaluation artifact
// of the paper. Each benchmark wraps one experiment of internal/bench and
// reports the headline numbers as custom metrics, so that
//
//	go test -bench=. -benchmem
//
// reproduces Table 1, the quantified Figure 1, the split register allocation
// claim, the code-compactness claim and the Section 3 heterogeneous offload
// scenario in one run. Absolute values are cycles of the simulated targets,
// not wall-clock time of the host running the benchmarks.
package main

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/jit"
	"repro/internal/kernels"
	"repro/internal/target"
)

// BenchmarkTable1 reproduces Table 1: run times and speedups of split
// automatic vectorization on the three simulated targets.
func BenchmarkTable1(b *testing.B) {
	var report *bench.Table1Report
	for i := 0; i < b.N; i++ {
		r, err := bench.RunTable1(bench.Table1Options{N: 4096})
		if err != nil {
			b.Fatal(err)
		}
		report = r
	}
	b.Log("\n" + report.String())
	for _, row := range report.Rows {
		for _, cell := range row.Cells {
			b.ReportMetric(cell.Relative, row.Kernel+"_"+string(cell.Target)+"_speedup")
		}
	}
}

// BenchmarkTable1Kernels times each (kernel, target, scalar|vectorized)
// combination separately so per-cell cycle counts appear as individual
// benchmark results.
func BenchmarkTable1Kernels(b *testing.B) {
	report, err := bench.RunTable1(bench.Table1Options{N: 4096})
	if err != nil {
		b.Fatal(err)
	}
	for _, row := range report.Rows {
		for _, cell := range row.Cells {
			cell := cell
			b.Run(row.Kernel+"/"+string(cell.Target), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					_ = cell
				}
				b.ReportMetric(float64(cell.ScalarCycles), "scalar_cycles")
				b.ReportMetric(float64(cell.VectorCycles), "vector_cycles")
				b.ReportMetric(cell.Relative, "speedup")
			})
		}
	}
}

// BenchmarkFigure1 quantifies the split compilation flow of Figure 1:
// offline analysis effort, annotation bytes, and online JIT effort with and
// without the annotations.
func BenchmarkFigure1(b *testing.B) {
	var report *bench.Figure1Report
	for i := 0; i < b.N; i++ {
		r, err := bench.RunFigure1()
		if err != nil {
			b.Fatal(err)
		}
		report = r
	}
	b.Log("\n" + report.String())
	var withAnn, withoutAnn, annBytes float64
	for _, row := range report.Rows {
		withAnn += float64(row.JITStepsWithAnnotations)
		withoutAnn += float64(row.JITStepsWithoutAnnotations)
		annBytes += float64(row.AnnotationBytes)
	}
	b.ReportMetric(withAnn, "jit_steps_with_annotations")
	b.ReportMetric(withoutAnn, "jit_steps_without_annotations")
	b.ReportMetric(annBytes, "annotation_bytes")
}

// BenchmarkSplitRegAlloc reproduces the Section 4 split register allocation
// claim: spill reduction of the annotation-driven allocator versus the
// purely online baseline, across embedded register file sizes.
func BenchmarkSplitRegAlloc(b *testing.B) {
	var report *bench.RegAllocReport
	for i := 0; i < b.N; i++ {
		r, err := bench.RunRegAlloc(bench.RegAllocOptions{})
		if err != nil {
			b.Fatal(err)
		}
		report = r
	}
	b.Log("\n" + report.String())
	b.ReportMetric(report.MaxSavings*100, "max_spill_savings_%")
	for _, p := range report.Points {
		b.ReportMetric(p.SavingsVsOnline*100, "savings_%_at_"+itoa(p.IntRegs)+"regs")
	}
}

// BenchmarkCodeSize reproduces the Section 2.1 compactness claim: deployable
// bytecode size versus JIT-generated native code size.
func BenchmarkCodeSize(b *testing.B) {
	var report *bench.CodeSizeReport
	for i := 0; i < b.N; i++ {
		r, err := bench.RunCodeSize()
		if err != nil {
			b.Fatal(err)
		}
		report = r
	}
	b.Log("\n" + report.String())
	b.ReportMetric(report.AverageExpansion, "native_vs_bytecode_ratio")
}

// BenchmarkHeterogeneous reproduces the Section 3 scenario: the same
// deployable module on a Cell-like system, host-only versus
// annotation-guided offload of the numerical kernels.
func BenchmarkHeterogeneous(b *testing.B) {
	var report *bench.HeteroReport
	for i := 0; i < b.N; i++ {
		r, err := bench.RunHetero(bench.HeteroOptions{Frames: 4, Samples: 1024})
		if err != nil {
			b.Fatal(err)
		}
		report = r
	}
	b.Log("\n" + report.String())
	b.ReportMetric(report.Speedup, "offload_speedup")
	b.ReportMetric(float64(report.HostOnlyCycles), "host_only_cycles")
	b.ReportMetric(float64(report.OffloadedCycles), "offloaded_cycles")
}

// BenchmarkAblationVectorizedOnScalarJIT measures the ablation the paper
// highlights in Table 1's UltraSparc/PowerPC columns: the SIMD-capable
// target forced to ignore the vector builtins (scalarization), versus using
// its vector unit.
func BenchmarkAblationVectorizedOnScalarJIT(b *testing.B) {
	speedup, err := bench.ScalarizationAblation("max_u8", 4096)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		_ = speedup
	}
	b.ReportMetric(speedup, "simd_vs_forced_scalarization")
	if speedup <= 1 {
		b.Errorf("SIMD lowering should beat forced scalarization on %s", target.X86SSE)
	}
}

// BenchmarkHostDispatch is the wall-clock twin of the simulated-cycle
// benchmarks above: it times real host nanoseconds of the simulator's
// pre-decoded dispatch loop running each Table 1 kernel (vectorized
// bytecode) on each Table 1 target, with -benchmem showing the loop's zero
// steady-state allocations. Unlike every other benchmark in this file the
// numbers are host-dependent; compare runs with benchstat. The same matrix
// is recorded into BENCH_results.json by `dacbench -exp host`.
func BenchmarkHostDispatch(b *testing.B) {
	const n = 4096
	for _, name := range kernels.Table1Names {
		res, k, err := core.CompileKernel(name, core.OfflineOptions{})
		if err != nil {
			b.Fatal(err)
		}
		for _, tgt := range target.Table1() {
			dep, err := core.Deploy(res.Encoded, tgt, jit.Options{RegAlloc: jit.RegAllocSplit})
			if err != nil {
				b.Fatal(err)
			}
			in, err := kernels.NewInputs(name, n, 1)
			if err != nil {
				b.Fatal(err)
			}
			m := dep.Machine
			args, _ := bench.MarshalKernelArgs(m, in)
			b.Run(name+"/"+string(tgt.Arch), func(b *testing.B) {
				if _, err := m.Call(k.Entry, args...); err != nil {
					b.Fatal(err)
				}
				m.ResetStats()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := m.Call(k.Entry, args...); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				if sec := b.Elapsed().Seconds(); sec > 0 {
					b.ReportMetric(float64(m.Stats.Instructions)/sec/1e6, "sim_MIPS")
				}
			})
		}
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
